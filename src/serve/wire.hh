/**
 * @file
 * Binary frame protocol between the shard coordinator and its worker
 * processes.
 *
 * Every message on a coordinator <-> worker socketpair is one frame:
 * a fixed 16-byte header followed by a payload whose integrity the
 * header vouches for.
 *
 *     offset  size  field
 *     0       4     magic   "ASX1" (0x31585341 little-endian)
 *     4       1     version kWireVersion (1)
 *     5       1     type    FrameType
 *     6       2     reserved (0)
 *     8       4     payload length (bytes, <= kMaxPayload)
 *     12      4     CRC32 of the payload (IEEE 802.3 polynomial)
 *
 * Scalars are little-endian fixed-width integers; doubles travel as
 * their raw IEEE-754 bit patterns (Reader/Writer below), so every
 * calibration constant, gate angle, and timestamp round-trips
 * bit-exactly — the foundation of the executor's "re-execution is
 * bit-identical" guarantee.  Strings are a u32 length plus bytes.
 *
 * Corruption handling is deliberately blunt: a bad magic, version,
 * oversized length, CRC mismatch, short read, or out-of-bounds decode
 * throws WireError, and the peer that observes it treats the
 * connection (and the worker behind it) as dead — leases outstanding
 * on it are reassigned by the supervisor.  A byte stream cannot be
 * resynchronized trustworthily after framing is lost, so no attempt
 * is made.
 *
 * Frame types (direction):
 *     SUBMIT    coord -> worker  job description: device runcard,
 *                                calibration cycle, noise flags,
 *                                scheduled circuit, shots, seed,
 *                                backend/mode, fault schedule
 *     LEASE     coord -> worker  execute blocks [lo, hi) of a job
 *     PARTIAL   worker -> coord  progress inside a lease (doubles as
 *                                the in-lease heartbeat)
 *     RESULT    worker -> coord  a lease's (outcome key, count) items
 *     HEARTBEAT worker -> coord  liveness (sent at startup as the
 *                                post-exec hello, and after SUBMIT)
 *     SHUTDOWN  coord -> worker  exit cleanly
 *     ERROR     worker -> coord  lease failed (message); the lease is
 *                                reassigned or quarantined
 */

#ifndef ADAPT_SERVE_WIRE_HH
#define ADAPT_SERVE_WIRE_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "noise/machine.hh"
#include "noise/noise_model.hh"
#include "serve/fault.hh"
#include "sim/backend.hh"
#include "transpile/schedule.hh"

namespace adapt::serve::wire
{

constexpr uint32_t kMagic = 0x31585341u; // "ASX1"
constexpr uint8_t kWireVersion = 1;
constexpr size_t kHeaderBytes = 16;

/** Upper bound on one payload (a RESULT over a 2^26-support
 *  histogram still fits); anything larger is framing corruption. */
constexpr uint32_t kMaxPayload = 1u << 30;

/** Framing or integrity violation; the connection is unusable. */
class WireError : public std::runtime_error
{
  public:
    explicit WireError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

enum class FrameType : uint8_t
{
    Submit = 1,
    Lease = 2,
    Partial = 3,
    Result = 4,
    Heartbeat = 5,
    Shutdown = 6,
    Error = 7,
};

const char *frameTypeName(FrameType type);

/** CRC32 (IEEE 802.3, reflected 0xEDB88320) of @p len bytes. */
uint32_t crc32(const void *data, size_t len);

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Heartbeat;
    std::vector<uint8_t> payload;
};

/** Append-only little-endian payload builder. */
class Writer
{
  public:
    void u8(uint8_t v) { buf_.push_back(v); }
    void u16(uint16_t v) { raw(&v, sizeof v); }
    void u32(uint32_t v) { raw(&v, sizeof v); }
    void u64(uint64_t v) { raw(&v, sizeof v); }
    void i32(int32_t v) { raw(&v, sizeof v); }
    void i64(int64_t v) { raw(&v, sizeof v); }

    /** Raw IEEE-754 bits: the peer's strtod-free exact round trip. */
    void f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        raw(s.data(), s.size());
    }

    const std::vector<uint8_t> &bytes() const { return buf_; }
    std::vector<uint8_t> take() { return std::move(buf_); }

  private:
    void raw(const void *p, size_t n)
    {
        const auto *b = static_cast<const uint8_t *>(p);
        buf_.insert(buf_.end(), b, b + n);
    }

    std::vector<uint8_t> buf_;
};

/** Bounds-checked little-endian payload reader; any overrun is a
 *  WireError, never a silent misparse. */
class Reader
{
  public:
    Reader(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {
    }

    explicit Reader(const std::vector<uint8_t> &payload)
        : Reader(payload.data(), payload.size())
    {
    }

    uint8_t u8() { return take(1)[0]; }
    uint16_t u16() { return scalar<uint16_t>(); }
    uint32_t u32() { return scalar<uint32_t>(); }
    uint64_t u64() { return scalar<uint64_t>(); }
    int32_t i32() { return static_cast<int32_t>(scalar<uint32_t>()); }
    int64_t i64() { return static_cast<int64_t>(scalar<uint64_t>()); }

    double f64()
    {
        const uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    std::string str()
    {
        const uint32_t n = u32();
        const uint8_t *p = take(n);
        return std::string(reinterpret_cast<const char *>(p), n);
    }

    /** Bounded element-count read for vector prefixes: rejects counts
     *  that could not possibly fit in the remaining payload. */
    uint32_t count(size_t min_elem_bytes)
    {
        const uint32_t n = u32();
        if (min_elem_bytes > 0 && n > remaining() / min_elem_bytes)
            throw WireError("wire: element count exceeds payload");
        return n;
    }

    size_t remaining() const { return size_ - pos_; }
    bool done() const { return pos_ == size_; }

  private:
    template <typename T> T scalar()
    {
        T v;
        std::memcpy(&v, take(sizeof v), sizeof v);
        return v;
    }

    const uint8_t *take(size_t n)
    {
        if (n > remaining())
            throw WireError("wire: payload truncated mid-field");
        const uint8_t *p = data_ + pos_;
        pos_ += n;
        return p;
    }

    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
};

/** @name Frame encode / blocking fd transport @{ */

/** Header + payload as one contiguous byte buffer. */
std::vector<uint8_t> encodeFrame(FrameType type,
                                 const std::vector<uint8_t> &payload);

/**
 * Write one frame to @p fd (handles partial writes; suppresses
 * SIGPIPE on sockets).  @throws WireError when the peer is gone or
 * the descriptor errors.
 */
void writeFrame(int fd, FrameType type,
                const std::vector<uint8_t> &payload);

/**
 * Block until one whole frame arrives on @p fd.  Returns false on a
 * clean EOF at a frame boundary (the peer closed); @throws WireError
 * on truncation mid-frame, bad magic/version, oversized payloads, or
 * a CRC mismatch — all of which mean the stream is unusable.
 */
bool readFrame(int fd, Frame &out);

/**
 * Write raw bytes to @p fd with writeFrame's partial-write and
 * SIGPIPE handling but *no* framing — the fault injector's
 * FrameCorrupt site uses it to put an intentionally damaged,
 * already-encoded frame on the wire.  @throws WireError on error.
 */
void writeRaw(int fd, const std::vector<uint8_t> &bytes);

/** @} */

/** @name Structure codecs @{ */

/** NoiseFlags as a bitmask (bit order documented in wire.cc). */
uint32_t packNoiseFlags(const NoiseFlags &flags);
NoiseFlags unpackNoiseFlags(uint32_t bits);

/** Exact ScheduledCircuit round trip: every op's gate, operands,
 *  parameters, classical links, timestamps (raw bits), link index,
 *  and DD marker; decode rebuilds via addOp + finalize(), whose
 *  stable sort reproduces the original op order. */
void encodeScheduledCircuit(Writer &w, const ScheduledCircuit &sched);
ScheduledCircuit decodeScheduledCircuit(Reader &r);

void encodeFaultConfig(Writer &w, const FaultConfig &cfg);
FaultConfig decodeFaultConfig(Reader &r);

/** @} */

/** @name Messages @{ */

/** Job description a worker can rebuild bit-identically: the device
 *  travels as canonical runcard text (exact 17-digit round trip), the
 *  executable as a binary ScheduledCircuit, and the fault schedule so
 *  worker-side injection replays the coordinator's configuration. */
struct SubmitMsg
{
    uint64_t jobKey = 0;
    std::string runcard;
    int32_t cycle = 0;
    NoiseFlags flags;
    uint8_t backend = 0; //!< BackendKind
    uint8_t mode = 0;    //!< ExecMode
    int32_t shots = 0;   //!< total shots of the full job
    uint64_t seed = 1;
    ScheduledCircuit sched{0, 0};
    FaultConfig faults;
};

struct LeaseMsg
{
    uint64_t jobKey = 0;
    uint64_t lease = 0;   //!< lease ordinal within the job
    uint32_t attempt = 0; //!< reassignment count of this lease
    int64_t blockLo = 0;
    int64_t blockHi = 0;
};

struct PartialMsg
{
    uint64_t jobKey = 0;
    uint64_t lease = 0;
    int64_t shotsDone = 0; //!< within this lease
};

struct ResultMsg
{
    uint64_t jobKey = 0;
    uint64_t lease = 0;
    uint32_t attempt = 0;
    /** Sorted (outcome key, count) items of exactly the lease's
     *  shots. */
    std::vector<std::pair<uint64_t, uint64_t>> items;
};

struct HeartbeatMsg
{
    uint64_t worker = 0; //!< incarnation ordinal
    uint64_t pid = 0;
};

struct ErrorMsg
{
    uint64_t jobKey = 0;
    uint64_t lease = 0;
    std::string message;
};

std::vector<uint8_t> encodeSubmit(const SubmitMsg &msg);
SubmitMsg decodeSubmit(const std::vector<uint8_t> &payload);

std::vector<uint8_t> encodeLease(const LeaseMsg &msg);
LeaseMsg decodeLease(const std::vector<uint8_t> &payload);

std::vector<uint8_t> encodePartial(const PartialMsg &msg);
PartialMsg decodePartial(const std::vector<uint8_t> &payload);

std::vector<uint8_t> encodeResult(const ResultMsg &msg);
ResultMsg decodeResult(const std::vector<uint8_t> &payload);

std::vector<uint8_t> encodeHeartbeat(const HeartbeatMsg &msg);
HeartbeatMsg decodeHeartbeat(const std::vector<uint8_t> &payload);

std::vector<uint8_t> encodeError(const ErrorMsg &msg);
ErrorMsg decodeError(const std::vector<uint8_t> &payload);

/** @} */

} // namespace adapt::serve::wire

#endif // ADAPT_SERVE_WIRE_HH
