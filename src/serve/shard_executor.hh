/**
 * @file
 * Supervised multi-process shard executor.
 *
 * The determinism contract makes distribution safe — a shot block or
 * a search candidate evaluates bit-identically anywhere — and this
 * layer makes it *robust*: a supervisor fork/execs a pool of worker
 * processes (the `adapt_shard_worker` binary), shards work into
 * leases, and speaks the serve/wire.hh frame protocol with each
 * worker over a socketpair.  Two lease shapes exist:
 *
 *  - **shot-block leases** (runSharded): a large-shot job's block
 *    range [0, blockCount) — kFrameLanes-sized blocks on the batch
 *    frame path, kShotBlock elsewhere — is cut into runs of
 *    `leaseBlocks` consecutive blocks, each executed by
 *    NoisyMachine::runShardRange on some worker;
 *  - **candidate leases** (runShardedBatch): each circuit of an
 *    independent batch — adaptSearch's 2^k mask variants — is one
 *    lease executing all of its own blocks.
 *
 * Every lease carries (job seed, absolute block range), so executing
 * it twice — or on a different worker, or in-process — produces the
 * same (outcome, count) items; the coordinator merges item lists by
 * key with exact integer addition (mergeShardItems).  The merged
 * histogram is therefore bit-identical to the in-process run()
 * oracle *regardless of the failure pattern*.
 *
 * Failure handling, in detection order:
 *  - **crash**: a worker's stream hits EOF (SIGKILL, _exit, OOM...).
 *    The worker is reaped, its outstanding lease reassigned, and a
 *    replacement spawned (up to `maxRestarts`).
 *  - **hang**: a worker executing a lease must emit PARTIAL frames
 *    (one per committed block); silence past `heartbeatMs` is a
 *    stall — the worker is SIGKILLed and handled as a crash.  The
 *    time from last heartbeat to the kill decision feeds the
 *    mean-detection-latency metric.
 *  - **corruption**: a frame failing its CRC / framing checks kills
 *    the connection (a desynchronized byte stream cannot be
 *    trusted); worker killed, lease reassigned.
 *  - **quarantine**: a lease failing `maxLeaseAttempts` times stops
 *    being offered to workers and executes in-process instead
 *    (runShardRange on the coordinator) — one poisonous lease
 *    degrades throughput, never correctness.
 *  - **degradation**: with no spawnable workers at all (exec
 *    failures, restart budget exhausted), remaining leases run
 *    in-process; the job still completes bit-identically.
 *
 * Deterministic failure injection: serve/fault.hh's process-level
 * sites — WorkerCrash / LeaseStall / FrameCorrupt keyed by
 * faultKey(lease ordinal, attempt), ExecFailure keyed by the spawn
 * ordinal — are evaluated inside the worker (the coordinator ships
 * its FaultConfig in every SUBMIT), so whether a recovery path fires
 * is a pure function of (schedule seed, site, key): independent of
 * worker count, interleaving, and wall-clock.  Replaying a
 * kill-storm schedule replays every reassignment.
 */

#ifndef ADAPT_SERVE_SHARD_EXECUTOR_HH
#define ADAPT_SERVE_SHARD_EXECUTOR_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "noise/machine.hh"

namespace adapt::serve
{

/** Pool tuning; fromEnv() layers ADAPT_SHARD_* knobs on defaults. */
struct ShardOptions
{
    /** Worker processes; 0 disables the executor entirely (the
     *  in-process path is untouched). */
    int workers = 0;

    /** Consecutive shard blocks per shot-block lease. */
    int64_t leaseBlocks = 4;

    /** A busy worker silent for longer than this is presumed hung
     *  and killed. */
    int heartbeatMs = 1000;

    /** Failed attempts before a lease is quarantined in-process. */
    int maxLeaseAttempts = 3;

    /** Replacement workers spawned over the executor's lifetime
     *  (beyond the initial pool) before it stops restarting. */
    int maxRestarts = 16;

    /** Worker binary path; empty = ADAPT_SHARD_WORKER_BIN, then
     *  `adapt_shard_worker` next to (or one/two levels above) the
     *  running executable. */
    std::string workerBinary;

    /**
     * Defaults overlaid with the environment:
     *   ADAPT_SHARD_WORKERS       (int >= 0, 0 = disabled)
     *   ADAPT_SHARD_LEASE_BLOCKS  (int >= 1)
     *   ADAPT_SHARD_HEARTBEAT_MS  (int >= 10)
     *   ADAPT_SHARD_MAX_ATTEMPTS  (int >= 1)
     *   ADAPT_SHARD_MAX_RESTARTS  (int >= 0)
     *   ADAPT_SHARD_WORKER_BIN    (path)
     * Garbage values warn (common/env.hh) and keep the default.
     */
    static ShardOptions fromEnv();
};

/** Recovery metrics (monotonic since construction). */
struct ShardStats
{
    uint64_t jobsSharded = 0;   //!< runSharded / batch calls served
    uint64_t jobsDegraded = 0;  //!< completed partly/fully in-process

    uint64_t leasesGranted = 0;
    uint64_t leasesCompleted = 0;   //!< RESULT accepted from a worker
    uint64_t leasesReassigned = 0;  //!< lost to a failure, re-granted
    uint64_t leasesQuarantined = 0; //!< executed in-process
    uint64_t leasesInProcess = 0;   //!< degraded-path in-process runs

    uint64_t workersSpawned = 0;
    uint64_t workersRestarted = 0;
    uint64_t workersCrashed = 0; //!< EOF while owing a lease
    uint64_t workersStalled = 0; //!< killed by the heartbeat watchdog
    uint64_t corruptFrames = 0;  //!< connections dropped on CRC/framing
    uint64_t execFailures = 0;   //!< spawns that never came up

    /** Failure-detection latency: per crash/stall/corruption, the ms
     *  between the worker's last heartbeat and the coordinator
     *  acting on the failure. */
    double detectionLatencyMsTotal = 0.0;
    uint64_t detections = 0;

    double meanDetectionLatencyMs() const
    {
        return detections == 0
                   ? 0.0
                   : detectionLatencyMsTotal /
                         static_cast<double>(detections);
    }
};

/**
 * The supervisor.  One executor owns one worker pool; runSharded and
 * runShardedBatch are thread-safe but serialize internally (one
 * sharded job in flight — the JobServer's dispatcher threads contend
 * here only when sharding is enabled).  Workers are spawned on first
 * use and persist across jobs; the destructor shuts them down.
 */
class ShardExecutor
{
  public:
    /** @p machine must outlive the executor (leases replicate it in
     *  workers via its runcard — see wire::SubmitMsg). */
    ShardExecutor(const NoisyMachine &machine, ShardOptions opts);
    ~ShardExecutor();

    ShardExecutor(const ShardExecutor &) = delete;
    ShardExecutor &operator=(const ShardExecutor &) = delete;

    /** True when workers > 0 and a worker binary was resolved.  An
     *  unavailable executor is inert; callers keep the in-process
     *  path. */
    bool available() const;

    /** Resolved worker binary path ("" when unavailable). */
    const std::string &workerBinary() const;

    /** PIDs of the currently live workers (kill-storm harnesses aim
     *  here). */
    std::vector<int> workerPids() const;

    /**
     * Execute @p shots of @p prepared sharded across the pool.
     * Output is bit-identical to machine.run(prepared, shots, seed)
     * for any pool size and failure pattern.  @p sched must be the
     * schedule @p prepared was prepared from (workers rebuild the
     * job from it).
     *
     * control.token stops the job at lease granularity: the returned
     * prefix covers the leases [0, k) that completed contiguously,
     * bit-identical to an uninterrupted run's first shotsDone shots.
     * control.progress fires with the committed prefix shot count.
     */
    RunOutcome runSharded(const PreparedCircuit &prepared,
                          const ScheduledCircuit &sched, int shots,
                          uint64_t seed,
                          ExecMode mode = ExecMode::Compiled,
                          const RunControl &control = {}) const;

    /**
     * Execute an independent batch — one candidate lease per circuit
     * — and return one distribution per job, bit-identical to
     * machine.runBatch(jobs, shots, seeds) for any pool size and
     * failure pattern.
     */
    std::vector<Distribution>
    runShardedBatch(std::span<const ScheduledCircuit> jobs, int shots,
                    std::span<const uint64_t> seeds,
                    BackendKind backend = BackendKind::Auto,
                    ExecMode mode = ExecMode::Compiled) const;

    ShardStats stats() const;

    /** Stop and reap every worker (idempotent; destructor calls
     *  it).  A later runSharded respawns the pool. */
    void shutdown();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace adapt::serve

#endif // ADAPT_SERVE_SHARD_EXECUTOR_HH
