/**
 * @file
 * The four competing policies of the evaluation (Sec. 5.6):
 * No-DD baseline, All-DD, ADAPT, and Runtime-Best (the oracle that
 * tries every mask on the real program).
 */

#ifndef ADAPT_ADAPT_POLICIES_HH
#define ADAPT_ADAPT_POLICIES_HH

#include <string>

#include "adapt/search.hh"

namespace adapt
{

/** Competing DD policies. */
enum class Policy
{
    NoDD,        //!< baseline: free evolution everywhere
    AllDD,       //!< DD on every qubit's every idle window
    Adapt,       //!< decoy-guided mask (this paper)
    RuntimeBest, //!< oracle: best mask found by running the program
};

/** Name for logs: "no-dd", "all-dd", "adapt", "runtime-best". */
std::string policyName(Policy policy);

/** Evaluation configuration shared across policies. */
struct PolicyOptions
{
    /** ADAPT search settings (also carries the DDOptions used by
     *  every policy). */
    AdaptOptions adapt;

    /** Shots for the final program execution. */
    int shots = 4000;

    /**
     * Runtime-Best enumerates all 2^N masks when N is small enough;
     * beyond this budget it samples random masks (plus the all-ones
     * mask) to stay tractable.  The paper's Runtime-Best is the full
     * enumeration on hardware.
     */
    int runtimeBestBudget = 256;

    /** Seed for program executions. */
    uint64_t seed = 4242;
};

/** Result of evaluating one policy on one program. */
struct PolicyOutcome
{
    Policy policy = Policy::NoDD;

    /** DD mask over logical qubits that was applied. */
    std::vector<bool> logicalMask;

    /** Measured output on the machine. */
    Distribution output;

    /** Fidelity = 1 - TVD against the ideal program output. */
    double fidelity = 0.0;

    /** Number of DD pulses the mask inserted. */
    int ddPulses = 0;

    /** Decoy executions consumed (ADAPT) or program executions
     *  consumed (Runtime-Best search); 0 otherwise. */
    int searchRuns = 0;

    /** Program-skeleton cache traffic of the policy's search batches
     *  (ADAPT decoy neighbourhoods / Runtime-Best mask candidates);
     *  0 for the searchless policies or when no cache is installed. */
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
};

/**
 * Evaluate one policy for a compiled program on a machine.
 *
 * @param ideal Ideal (noise-free) output of the program, used for
 *              scoring and by Runtime-Best's oracle selection.
 */
PolicyOutcome evaluatePolicy(Policy policy, const CompiledProgram &program,
                             const NoisyMachine &machine,
                             const Distribution &ideal,
                             const PolicyOptions &options = {});

/**
 * Apply a logical DD mask to the program's schedule (helper shared
 * by the policies and the mask-sweep experiments, e.g. Fig. 8).
 */
ScheduledCircuit applyMask(const CompiledProgram &program,
                           const NoisyMachine &machine,
                           const DDOptions &dd,
                           const std::vector<bool> &logical_mask);

} // namespace adapt

#endif // ADAPT_ADAPT_POLICIES_HH
