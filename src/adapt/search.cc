#include "adapt/search.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"

namespace adapt
{

std::vector<bool>
liftMask(const CompiledProgram &program,
         const std::vector<bool> &logical_mask)
{
    require(static_cast<int>(logical_mask.size()) ==
            program.logicalQubits,
            "logical mask width does not match the program");
    std::vector<bool> physical(
        program.initialLayout.physicalToLogical.size(), false);
    for (size_t lq = 0; lq < logical_mask.size(); lq++) {
        if (logical_mask[lq]) {
            const QubitId p = program.initialLayout.logicalToPhysical[lq];
            physical[static_cast<size_t>(p)] = true;
        }
    }
    return physical;
}

AdaptResult
adaptSearch(const CompiledProgram &program, const NoisyMachine &machine,
            const AdaptOptions &options)
{
    require(options.neighborhoodSize >= 1,
            "neighbourhood size must be at least 1");

    AdaptResult result;
    result.decoy = makeDecoy(program.physical, options.decoy);

    // Time the decoy identically to the input program.
    const ScheduledCircuit decoy_sched =
        reschedule(result.decoy.circuit, machine.device(),
                   machine.calibration());

    const int n_log = program.logicalQubits;
    result.logicalMask.assign(static_cast<size_t>(n_log), false);

    // Search order: logical qubits by descending idle time of their
    // physical host — the qubits where the DD decision matters most
    // are decided first.
    std::vector<QubitId> order(static_cast<size_t>(n_log));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(
        order.begin(), order.end(), [&](QubitId a, QubitId b) {
            const QubitId pa = program.initialLayout.logicalToPhysical[
                static_cast<size_t>(a)];
            const QubitId pb = program.initialLayout.logicalToPhysical[
                static_cast<size_t>(b)];
            return program.schedule.totalIdleTime(pa) >
                   program.schedule.totalIdleTime(pb);
        });

    int eval_index = 0;
    auto evaluate = [&](const std::vector<bool> &logical_mask) {
        const ScheduledCircuit with_dd =
            insertDD(decoy_sched, machine.calibration(), options.dd,
                     liftMask(program, logical_mask));
        const Distribution out = machine.run(
            with_dd, options.decoyShots,
            options.seed + static_cast<uint64_t>(eval_index) * 7919,
            /*threads=*/0, options.backend);
        eval_index++;
        return fidelity(result.decoy.idealOutput, out);
    };

    result.bestDecoyFidelity = -1.0;
    for (size_t group_start = 0;
         group_start < static_cast<size_t>(n_log);
         group_start += static_cast<size_t>(options.neighborhoodSize)) {
        const size_t group_end =
            std::min(group_start +
                         static_cast<size_t>(options.neighborhoodSize),
                     static_cast<size_t>(n_log));
        const int group_bits = static_cast<int>(group_end - group_start);

        // Exhaustive sweep of this neighbourhood with all previously
        // decided bits frozen.
        uint32_t best_combo = 0, second_combo = 0;
        double best_fid = -1.0, second_fid = -1.0;
        for (uint32_t combo = 0;
             combo < (uint32_t{1} << group_bits); combo++) {
            std::vector<bool> candidate = result.logicalMask;
            for (int b = 0; b < group_bits; b++) {
                candidate[static_cast<size_t>(
                    order[group_start + static_cast<size_t>(b)])] =
                    (combo >> b) & 1;
            }
            const double fid = evaluate(candidate);
            if (fid > best_fid) {
                second_fid = best_fid;
                second_combo = best_combo;
                best_fid = fid;
                best_combo = combo;
            } else if (fid > second_fid) {
                second_fid = fid;
                second_combo = combo;
            }
        }

        // Conservative estimate: union of the top-2 predictions
        // (Sec. 4.3: "1001" + "1011" -> "1011").
        const uint32_t chosen =
            options.conservativeMerge && second_fid >= 0.0
                ? (best_combo | second_combo)
                : best_combo;
        for (int b = 0; b < group_bits; b++) {
            result.logicalMask[static_cast<size_t>(
                order[group_start + static_cast<size_t>(b)])] =
                (chosen >> b) & 1;
        }
        result.bestDecoyFidelity = std::max(result.bestDecoyFidelity,
                                            best_fid);
    }

    result.decoysExecuted = eval_index;
    result.physicalMask = liftMask(program, result.logicalMask);
    return result;
}

} // namespace adapt
