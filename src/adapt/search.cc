#include "adapt/search.hh"

#include <algorithm>
#include <numeric>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "noise/program_cache.hh"
#include "serve/shard_executor.hh"

namespace adapt
{

std::vector<bool>
liftMask(const CompiledProgram &program,
         const std::vector<bool> &logical_mask)
{
    require(static_cast<int>(logical_mask.size()) ==
            program.logicalQubits,
            "logical mask width does not match the program");
    std::vector<bool> physical(
        program.initialLayout.physicalToLogical.size(), false);
    for (size_t lq = 0; lq < logical_mask.size(); lq++) {
        if (logical_mask[lq]) {
            const QubitId p = program.initialLayout.logicalToPhysical[lq];
            physical[static_cast<size_t>(p)] = true;
        }
    }
    return physical;
}

AdaptResult
adaptSearch(const CompiledProgram &program, const NoisyMachine &machine,
            const AdaptOptions &options)
{
    require(options.neighborhoodSize >= 1,
            "neighbourhood size must be at least 1");
    // 2^k candidates per neighbourhood: cap k well below the 32-bit
    // combo shift so a wide-register misconfiguration fails loudly
    // instead of overflowing.
    require(options.neighborhoodSize <= 24,
            "neighbourhood size above 24 would enumerate > 2^24 "
            "decoy variants per neighbourhood");

    AdaptResult result;
    result.decoy = makeDecoy(program.physical, options.decoy);

    // Time the decoy identically to the input program.
    const ScheduledCircuit decoy_sched =
        reschedule(result.decoy.circuit, machine.device(),
                   machine.calibration());

    const int n_log = program.logicalQubits;
    result.logicalMask.assign(static_cast<size_t>(n_log), false);

    // Search order: logical qubits by descending idle time of their
    // physical host — the qubits where the DD decision matters most
    // are decided first.
    std::vector<QubitId> order(static_cast<size_t>(n_log));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(
        order.begin(), order.end(), [&](QubitId a, QubitId b) {
            const QubitId pa = program.initialLayout.logicalToPhysical[
                static_cast<size_t>(a)];
            const QubitId pb = program.initialLayout.logicalToPhysical[
                static_cast<size_t>(b)];
            return program.schedule.totalIdleTime(pa) >
                   program.schedule.totalIdleTime(pb);
        });

    // Skeleton-cache traffic is reported as the delta of the
    // machine's cache counters across the search (the cache may be
    // process-shared, so absolute counts mean nothing here).
    const ProgramCache *cache = machine.programCache();
    const ProgramCache::Stats cache_before =
        cache != nullptr ? cache->stats() : ProgramCache::Stats{};

    int eval_index = 0;
    result.bestDecoyFidelity = -1.0;
    for (size_t group_start = 0;
         group_start < static_cast<size_t>(n_log);
         group_start += static_cast<size_t>(options.neighborhoodSize)) {
        const size_t group_end =
            std::min(group_start +
                         static_cast<size_t>(options.neighborhoodSize),
                     static_cast<size_t>(n_log));
        const int group_bits = static_cast<int>(group_end - group_start);
        const uint32_t num_combos = uint32_t{1} << group_bits;

        // All candidates of this neighbourhood are independent once
        // the previously decided bits are frozen, so build every
        // insertDD variant up front and execute them as one batch.
        // Seeds follow the historical serial derivation (one per
        // evaluation, in combo order), so the batch is bit-identical
        // to the old one-at-a-time loop at any thread count.
        std::vector<std::vector<bool>> candidates(num_combos);
        std::vector<uint64_t> seeds(num_combos);
        for (uint32_t combo = 0; combo < num_combos; combo++) {
            std::vector<bool> candidate = result.logicalMask;
            for (int b = 0; b < group_bits; b++) {
                candidate[static_cast<size_t>(
                    order[group_start + static_cast<size_t>(b)])] =
                    (combo >> b) & 1;
            }
            candidates[combo] = std::move(candidate);
            seeds[combo] = options.seed +
                           static_cast<uint64_t>(eval_index) * 7919;
            eval_index++;
        }

        // DD insertion and job preparation (plan lowering + shot-
        // program compilation) are themselves shot-invariant work, so
        // they fan out across the pool too; each variant is compiled
        // exactly once and that compilation is shared by all of its
        // decoy shots.  Outputs land by combo index, so the parallel
        // build changes nothing observable.
        // With a shard executor the variants ship to worker processes
        // as candidate leases (which prepare them there), so keep the
        // schedules; otherwise prepare locally as before.
        const bool sharded = options.sharder != nullptr &&
                             options.sharder->available();
        std::vector<PreparedCircuit> prepared(
            sharded ? 0 : num_combos);
        std::vector<ScheduledCircuit> variants(
            sharded ? num_combos : 0, ScheduledCircuit(0, 0));
        parallelFor(0, static_cast<int64_t>(num_combos),
                    options.threads,
                    [&](int64_t lo, int64_t hi, int) {
            for (int64_t i = lo; i < hi; i++) {
                ScheduledCircuit variant = insertDD(
                    decoy_sched, machine.calibration(), options.dd,
                    liftMask(program,
                             candidates[static_cast<size_t>(i)]));
                if (sharded) {
                    variants[static_cast<size_t>(i)] =
                        std::move(variant);
                } else {
                    prepared[static_cast<size_t>(i)] =
                        machine.prepare(variant, options.backend);
                }
            }
        });

        const std::vector<Distribution> outputs =
            sharded ? options.sharder->runShardedBatch(
                          variants, options.decoyShots, seeds,
                          options.backend)
                    : machine.runBatch(prepared, options.decoyShots,
                                       seeds, options.threads);

        std::vector<double> fids(num_combos);
        for (uint32_t combo = 0; combo < num_combos; combo++) {
            fids[combo] =
                fidelity(result.decoy.idealOutput, outputs[combo]);
        }

        // Top-2 scan in combo order (first strictly-greater wins,
        // matching the serial loop's tie-breaking).
        uint32_t best_combo = 0, second_combo = 0;
        double best_fid = -1.0, second_fid = -1.0;
        for (uint32_t combo = 0; combo < num_combos; combo++) {
            const double fid = fids[combo];
            if (fid > best_fid) {
                second_fid = best_fid;
                second_combo = best_combo;
                best_fid = fid;
                best_combo = combo;
            } else if (fid > second_fid) {
                second_fid = fid;
                second_combo = combo;
            }
        }

        // Conservative estimate: union of the top-2 predictions
        // (Sec. 4.3: "1001" + "1011" -> "1011").  The union is itself
        // one of the exhaustively enumerated combos, so the merged
        // mask's true decoy fidelity comes straight out of the batch
        // — no extra execution, and no reporting the pre-merge winner
        // for a mask that was never measured.
        const uint32_t chosen =
            options.conservativeMerge && second_fid >= 0.0
                ? (best_combo | second_combo)
                : best_combo;
        for (int b = 0; b < group_bits; b++) {
            result.logicalMask[static_cast<size_t>(
                order[group_start + static_cast<size_t>(b)])] =
                (chosen >> b) & 1;
        }
        // The final neighbourhood's chosen candidate *is* the
        // returned mask (all earlier bits frozen at their final
        // values), so after the loop this holds its true fidelity.
        result.bestDecoyFidelity = fids[chosen];
    }

    result.decoysExecuted = eval_index;
    result.physicalMask = liftMask(program, result.logicalMask);
    if (cache != nullptr) {
        const ProgramCache::Stats after = cache->stats();
        result.cacheHits = after.hits - cache_before.hits;
        result.cacheMisses = after.misses - cache_before.misses;
    }
    return result;
}

} // namespace adapt
