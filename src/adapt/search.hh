/**
 * @file
 * The ADAPT DD-mask search (Sec. 4.3).
 *
 * The space of DD masks is 2^N for N program qubits; ADAPT keeps the
 * search tractable with a localized divide-and-conquer: program
 * qubits are grouped into neighbourhoods of (at most) 4, each
 * neighbourhood is searched exhaustively (16 decoy executions) with
 * the bits of already-decided neighbourhoods frozen, and the top two
 * candidates are OR-merged (the paper's conservative estimate).  The
 * total decoy budget is therefore at most 4N executions — linear in
 * the qubit count.
 *
 * The 2^k candidates of a neighbourhood are independent given the
 * frozen bits, so each neighbourhood is submitted as one
 * NoisyMachine::runBatch job batch: the variants execute across the
 * thread pool while the sequential dependence between neighbourhoods
 * is preserved.  Per-candidate seeds follow the same derivation as
 * the historical serial loop, so masks and fidelities are
 * bit-identical at any thread count.
 */

#ifndef ADAPT_ADAPT_SEARCH_HH
#define ADAPT_ADAPT_SEARCH_HH

#include <cstdint>
#include <vector>

#include "adapt/decoy.hh"
#include "dd/sequences.hh"
#include "noise/machine.hh"
#include "transpile/transpiler.hh"

namespace adapt::serve
{
class ShardExecutor;
} // namespace adapt::serve

namespace adapt
{

/** ADAPT search configuration. */
struct AdaptOptions
{
    /** DD protocol / insertion knobs used for candidates and the
     *  final program. */
    DDOptions dd;

    /** Decoy construction. */
    DecoyOptions decoy;

    /** Neighbourhood width (paper default: 4). */
    int neighborhoodSize = 4;

    /** Shots per decoy execution on the machine. */
    int decoyShots = 2000;

    /** OR-merge the top-2 masks per neighbourhood (Sec. 4.3). */
    bool conservativeMerge = true;

    /** Seed for the decoy executions. */
    uint64_t seed = 2021;

    /**
     * Job-level parallelism for the per-neighbourhood decoy batches
     * (NoisyMachine::runBatch); <= 0 (default) uses
     * ADAPT_NUM_THREADS or the hardware concurrency.  The chosen
     * masks and fidelities are bit-identical at any setting.
     */
    int threads = 0;

    /**
     * Simulator backend for decoy (and program) executions.  Auto
     * routes all-Clifford decoys with Pauli-expressible noise to the
     * stabilizer fast path — the Sec. 4.2 scalability argument —
     * and falls back to dense otherwise.
     */
    BackendKind backend = BackendKind::Auto;

    /**
     * Optional multi-process shard executor for the candidate sweeps
     * (serve/shard_executor.hh): each neighbourhood's 2^k variants
     * become candidate leases executed across the worker pool, with
     * crash/hang recovery.  nullptr (default) keeps the in-process
     * runBatch path.  Masks and fidelities are bit-identical either
     * way (same per-candidate seeds, exact histogram merge).
     */
    const serve::ShardExecutor *sharder = nullptr;
};

/** Search outcome. */
struct AdaptResult
{
    /** Chosen DD mask over *logical* program qubits. */
    std::vector<bool> logicalMask;

    /** Same mask lifted to physical qubits via the initial layout. */
    std::vector<bool> physicalMask;

    /** Number of decoy circuits executed on the machine. */
    int decoysExecuted = 0;

    /**
     * True decoy fidelity of the mask actually returned: the
     * OR-merged candidate of the final neighbourhood, evaluated in
     * that neighbourhood's batch with every frozen bit already at its
     * final value.  (The merge can pick a combo that was not the
     * per-neighbourhood winner, so this is not simply the best
     * fidelity seen during the sweep.)
     */
    double bestDecoyFidelity = 0.0;

    /** The decoy used (for correlation studies). */
    Decoy decoy;

    /**
     * Program-skeleton cache traffic attributable to this search's
     * decoy-variant prepares (deltas of the machine's ProgramCache
     * counters around the batch submissions; both stay 0 when no
     * cache is installed).  Decoy variants share a circuit skeleton
     * whenever their DD masks lower to the same structure, so hits
     * here measure how much of the neighbourhood sweep was pure
     * constant re-binding.
     */
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
};

/**
 * Lift a logical-qubit mask to a physical-qubit mask using the
 * program's initial layout.
 */
std::vector<bool> liftMask(const CompiledProgram &program,
                           const std::vector<bool> &logical_mask);

/**
 * Run the ADAPT search for @p program on @p machine.
 *
 * Executes decoy variants on the machine and returns the DD mask
 * predicted to maximize program fidelity.
 */
AdaptResult adaptSearch(const CompiledProgram &program,
                        const NoisyMachine &machine,
                        const AdaptOptions &options = {});

} // namespace adapt

#endif // ADAPT_ADAPT_SEARCH_HH
