#include "adapt/decoy.hh"

#include <chrono>
#include <cmath>

#include "circuit/clifford1q.hh"
#include "common/logging.hh"
#include "transpile/decompose.hh"
#include "sim/backend.hh"

namespace adapt
{

std::string
decoyKindName(DecoyKind kind)
{
    switch (kind) {
      case DecoyKind::Clifford: return "cdc";
      case DecoyKind::Trivial: return "trivial";
      case DecoyKind::Seeded: return "sdc";
    }
    panic("unreachable decoy kind");
}

namespace
{

/** Number of active qubits below which exact dense simulation is
 *  used for the ideal decoy output. */
constexpr int kDenseIdealLimit = 20;

/** Replace a single-qubit gate by its nearest Clifford's gate
 *  sequence. */
void
emitNearestClifford(Circuit &out, const Gate &gate)
{
    const Clifford1Q &nearest = nearestClifford(gateMatrix(gate));
    for (GateType type : nearest.gates)
        out.add({type, {gate.qubit()}});
}

} // namespace

Decoy
makeDecoy(const Circuit &physical, const DecoyOptions &options)
{
    Decoy decoy{Circuit(physical.numQubits(), physical.numClbits()),
                {}, 0.0, 0.0, 0};

    // Qubits whose first non-Clifford gate is kept as an SDC seed.
    std::vector<bool> seeded(static_cast<size_t>(physical.numQubits()),
                             false);
    int seeds_used = 0;

    for (const Gate &gate : physical.gates()) {
        if (!isUnitaryGate(gate.type) || isTwoQubitGate(gate.type)) {
            decoy.circuit.add(gate);
            continue;
        }
        if (options.kind == DecoyKind::Trivial) {
            // CNOT skeleton only: every 1q unitary is dropped.
            continue;
        }
        if (gate.isClifford()) {
            decoy.circuit.add(gate);
            continue;
        }
        // Non-Clifford single-qubit gate.
        const auto q = static_cast<size_t>(gate.qubit());
        const bool can_seed = options.kind == DecoyKind::Seeded &&
                              !seeded[q] &&
                              seeds_used < options.maxSeedQubits;
        if (can_seed) {
            seeded[q] = true;
            seeds_used++;
            decoy.circuit.add(gate);
            decoy.nonCliffordGates++;
        } else {
            emitNearestClifford(decoy.circuit, gate);
        }
    }

    // Nearest-Clifford realizations use named gates (H / S / SX...);
    // lower them back to the physical basis.  CX structure is
    // untouched.
    decoy.circuit = decompose(decoy.circuit);

    const auto t0 = std::chrono::steady_clock::now();
    decoy.idealOutput = decoyIdealOutput(decoy.circuit);
    const auto t1 = std::chrono::steady_clock::now();
    decoy.simTimeSec =
        std::chrono::duration<double>(t1 - t0).count();
    decoy.idealEntropy = decoy.idealOutput.entropy();
    return decoy;
}

Distribution
decoyIdealOutput(const Circuit &circuit, int stabilizer_shots,
                 uint64_t seed, BackendKind backend)
{
    return idealOutputDistribution(circuit, stabilizer_shots, seed,
                                   backend, kDenseIdealLimit);
}

} // namespace adapt
