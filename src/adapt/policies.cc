#include "adapt/policies.hh"

#include <algorithm>

#include "common/logging.hh"

namespace adapt
{

std::string
policyName(Policy policy)
{
    switch (policy) {
      case Policy::NoDD: return "no-dd";
      case Policy::AllDD: return "all-dd";
      case Policy::Adapt: return "adapt";
      case Policy::RuntimeBest: return "runtime-best";
    }
    panic("unreachable policy");
}

ScheduledCircuit
applyMask(const CompiledProgram &program, const NoisyMachine &machine,
          const DDOptions &dd, const std::vector<bool> &logical_mask)
{
    return insertDD(program.schedule, machine.calibration(), dd,
                    liftMask(program, logical_mask));
}

namespace
{

PolicyOutcome
runWithMask(Policy policy, const CompiledProgram &program,
            const NoisyMachine &machine, const Distribution &ideal,
            const PolicyOptions &options,
            const std::vector<bool> &logical_mask, uint64_t seed)
{
    PolicyOutcome outcome;
    outcome.policy = policy;
    outcome.logicalMask = logical_mask;
    ScheduledCircuit sched =
        applyMask(program, machine, options.adapt.dd, logical_mask);
    if (policy == Policy::AllDD) {
        // All-DD covers *every* qubit (including routing ancillas),
        // not just program qubits.
        sched = insertDDAll(program.schedule, machine.calibration(),
                            options.adapt.dd);
    }
    outcome.ddPulses = ddPulseCount(sched);
    outcome.output = machine.run(sched, options.shots, seed,
                                 /*threads=*/0, options.adapt.backend);
    outcome.fidelity = fidelity(ideal, outcome.output);
    return outcome;
}

} // namespace

PolicyOutcome
evaluatePolicy(Policy policy, const CompiledProgram &program,
               const NoisyMachine &machine, const Distribution &ideal,
               const PolicyOptions &options)
{
    const auto n_log = static_cast<size_t>(program.logicalQubits);
    const std::vector<bool> none(n_log, false);
    const std::vector<bool> all(n_log, true);

    switch (policy) {
      case Policy::NoDD:
        return runWithMask(policy, program, machine, ideal, options,
                           none, options.seed);
      case Policy::AllDD:
        return runWithMask(policy, program, machine, ideal, options,
                           all, options.seed);
      case Policy::Adapt: {
        const AdaptResult search =
            adaptSearch(program, machine, options.adapt);
        PolicyOutcome outcome =
            runWithMask(policy, program, machine, ideal, options,
                        search.logicalMask, options.seed);
        outcome.searchRuns = search.decoysExecuted;
        return outcome;
      }
      case Policy::RuntimeBest: {
        // Oracle: try masks on the *real* program and keep the best.
        std::vector<std::vector<bool>> candidates;
        const uint64_t full = uint64_t{1} << n_log;
        if (full <= static_cast<uint64_t>(options.runtimeBestBudget)) {
            for (uint64_t bits = 0; bits < full; bits++) {
                std::vector<bool> mask(n_log, false);
                for (size_t b = 0; b < n_log; b++)
                    mask[b] = (bits >> b) & 1;
                candidates.push_back(std::move(mask));
            }
        } else {
            // Sampled enumeration: the exact oracle is exponential;
            // keep the two structured masks plus random ones.
            candidates.push_back(none);
            candidates.push_back(all);
            Rng rng(options.seed ^ 0xbe57);
            while (static_cast<int>(candidates.size()) <
                   options.runtimeBestBudget) {
                std::vector<bool> mask(n_log, false);
                for (size_t b = 0; b < n_log; b++)
                    mask[b] = rng.bernoulli(0.5);
                candidates.push_back(std::move(mask));
            }
        }

        PolicyOutcome best;
        best.policy = policy;
        best.fidelity = -1.0;
        int runs = 0;
        for (const auto &mask : candidates) {
            PolicyOutcome outcome = runWithMask(
                policy, program, machine, ideal, options, mask,
                options.seed + static_cast<uint64_t>(runs) * 104729);
            runs++;
            if (outcome.fidelity > best.fidelity)
                best = std::move(outcome);
        }
        best.searchRuns = runs;
        return best;
      }
    }
    panic("unreachable policy");
}

} // namespace adapt
