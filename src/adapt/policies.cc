#include "adapt/policies.hh"

#include <algorithm>
#include <set>
#include <utility>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "noise/program_cache.hh"

namespace adapt
{

std::string
policyName(Policy policy)
{
    switch (policy) {
      case Policy::NoDD: return "no-dd";
      case Policy::AllDD: return "all-dd";
      case Policy::Adapt: return "adapt";
      case Policy::RuntimeBest: return "runtime-best";
    }
    panic("unreachable policy");
}

ScheduledCircuit
applyMask(const CompiledProgram &program, const NoisyMachine &machine,
          const DDOptions &dd, const std::vector<bool> &logical_mask)
{
    return insertDD(program.schedule, machine.calibration(), dd,
                    liftMask(program, logical_mask));
}

namespace
{

PolicyOutcome
runWithMask(Policy policy, const CompiledProgram &program,
            const NoisyMachine &machine, const Distribution &ideal,
            const PolicyOptions &options,
            const std::vector<bool> &logical_mask, uint64_t seed)
{
    PolicyOutcome outcome;
    outcome.policy = policy;
    outcome.logicalMask = logical_mask;
    ScheduledCircuit sched =
        applyMask(program, machine, options.adapt.dd, logical_mask);
    if (policy == Policy::AllDD) {
        // All-DD covers *every* qubit (including routing ancillas),
        // not just program qubits.
        sched = insertDDAll(program.schedule, machine.calibration(),
                            options.adapt.dd);
    }
    outcome.ddPulses = ddPulseCount(sched);
    outcome.output = machine.run(sched, options.shots, seed,
                                 /*threads=*/0, options.adapt.backend);
    outcome.fidelity = fidelity(ideal, outcome.output);
    return outcome;
}

} // namespace

PolicyOutcome
evaluatePolicy(Policy policy, const CompiledProgram &program,
               const NoisyMachine &machine, const Distribution &ideal,
               const PolicyOptions &options)
{
    const auto n_log = static_cast<size_t>(program.logicalQubits);
    const std::vector<bool> none(n_log, false);
    const std::vector<bool> all(n_log, true);

    switch (policy) {
      case Policy::NoDD:
        return runWithMask(policy, program, machine, ideal, options,
                           none, options.seed);
      case Policy::AllDD:
        return runWithMask(policy, program, machine, ideal, options,
                           all, options.seed);
      case Policy::Adapt: {
        const AdaptResult search =
            adaptSearch(program, machine, options.adapt);
        PolicyOutcome outcome =
            runWithMask(policy, program, machine, ideal, options,
                        search.logicalMask, options.seed);
        outcome.searchRuns = search.decoysExecuted;
        outcome.cacheHits = search.cacheHits;
        outcome.cacheMisses = search.cacheMisses;
        return outcome;
      }
      case Policy::RuntimeBest: {
        // Oracle: try masks on the *real* program and keep the best.
        // Programs with >= 64 logical qubits cannot enumerate (the
        // 1 << n_log key would overflow before the budget comparison
        // even happens), so they always take the sampled branch.
        std::vector<std::vector<bool>> candidates;
        const bool enumerable =
            program.logicalQubits < 64 &&
            (uint64_t{1} << n_log) <=
                static_cast<uint64_t>(options.runtimeBestBudget);
        if (enumerable) {
            const uint64_t full = uint64_t{1} << n_log;
            for (uint64_t bits = 0; bits < full; bits++) {
                std::vector<bool> mask(n_log, false);
                for (size_t b = 0; b < n_log; b++)
                    mask[b] = (bits >> b) & 1;
                candidates.push_back(std::move(mask));
            }
        } else {
            // Sampled enumeration: the exact oracle is exponential;
            // keep the two structured masks plus random ones.  Masks
            // are deduplicated so a repeated draw doesn't burn a slot
            // of the budget on a candidate already being run; the
            // budget is always reachable because this branch implies
            // strictly more than runtimeBestBudget distinct masks
            // exist.
            std::set<std::vector<bool>> seen;
            auto add_unique = [&](std::vector<bool> mask) {
                if (seen.insert(mask).second)
                    candidates.push_back(std::move(mask));
            };
            add_unique(none);
            add_unique(all);
            Rng rng(options.seed ^ 0xbe57);
            while (static_cast<int>(candidates.size()) <
                   options.runtimeBestBudget) {
                std::vector<bool> mask(n_log, false);
                for (size_t b = 0; b < n_log; b++)
                    mask[b] = rng.bernoulli(0.5);
                add_unique(std::move(mask));
            }
        }

        // The candidates are independent program executions, so they
        // run as one batch; seeds follow the historical serial
        // derivation (one per candidate, in candidate order), and the
        // first strictly-best fidelity wins, matching the serial
        // loop's tie-breaking.  DD insertion and job preparation fan
        // out across the pool as well, and each candidate's one
        // compilation is shared by all of its shots.
        const size_t n_cand = candidates.size();
        const ProgramCache *cache = machine.programCache();
        const ProgramCache::Stats cache_before =
            cache != nullptr ? cache->stats() : ProgramCache::Stats{};
        std::vector<PreparedCircuit> prepared(n_cand);
        std::vector<int> dd_pulses(n_cand, 0);
        std::vector<uint64_t> seeds(n_cand);
        for (size_t i = 0; i < n_cand; i++)
            seeds[i] = options.seed + static_cast<uint64_t>(i) * 104729;
        parallelFor(0, static_cast<int64_t>(n_cand),
                    options.adapt.threads,
                    [&](int64_t lo, int64_t hi, int) {
            for (int64_t i = lo; i < hi; i++) {
                const auto ci = static_cast<size_t>(i);
                const ScheduledCircuit sched =
                    applyMask(program, machine, options.adapt.dd,
                              candidates[ci]);
                dd_pulses[ci] = ddPulseCount(sched);
                prepared[ci] =
                    machine.prepare(sched, options.adapt.backend);
            }
        });
        const std::vector<Distribution> outputs = machine.runBatch(
            prepared, options.shots, seeds, options.adapt.threads);

        size_t win = 0;
        double best_fid = -1.0;
        for (size_t i = 0; i < outputs.size(); i++) {
            const double fid = fidelity(ideal, outputs[i]);
            if (fid > best_fid) {
                best_fid = fid;
                win = i;
            }
        }

        PolicyOutcome best;
        best.policy = policy;
        best.logicalMask = std::move(candidates[win]);
        best.output = outputs[win];
        best.fidelity = best_fid;
        best.ddPulses = dd_pulses[win];
        best.searchRuns = static_cast<int>(outputs.size());
        if (cache != nullptr) {
            const ProgramCache::Stats after = cache->stats();
            best.cacheHits = after.hits - cache_before.hits;
            best.cacheMisses = after.misses - cache_before.misses;
        }
        return best;
      }
    }
    panic("unreachable policy");
}

} // namespace adapt
