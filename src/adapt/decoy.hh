/**
 * @file
 * Decoy circuit generation (Sec. 4.2 of the paper).
 *
 * A decoy is structurally identical to the compiled input program —
 * same CNOTs on the same physical links, hence the same crosstalk and
 * nearly identical idle windows — but classically simulable, so its
 * correct output is known and DD-mask candidates can be scored
 * against it on the (noisy) machine.
 *
 * Three flavours:
 *  - Clifford Decoy Circuit (CDC): every non-Clifford single-qubit
 *    gate is replaced by its nearest Clifford under the
 *    phase-optimized operator norm (Eq. 1).
 *  - Trivial decoy: all single-qubit gates dropped; only the CNOT
 *    skeleton remains (Fig. 10(b); misses phase errors).
 *  - Seeded Decoy Circuit (SDC): like CDC, but the first non-Clifford
 *    gate on each of a few seed qubits is kept verbatim, producing a
 *    richer state evolution with a low-entropy output
 *    (Sec. 4.2.3).
 */

#ifndef ADAPT_ADAPT_DECOY_HH
#define ADAPT_ADAPT_DECOY_HH

#include "circuit/circuit.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "sim/backend.hh"

namespace adapt
{

/** Decoy construction strategy. */
enum class DecoyKind
{
    Clifford, //!< CDC
    Trivial,  //!< CNOT skeleton only
    Seeded,   //!< SDC (default in ADAPT)
};

/** Name for logs: "cdc", "trivial", "sdc". */
std::string decoyKindName(DecoyKind kind);

/** Decoy generation knobs. */
struct DecoyOptions
{
    DecoyKind kind = DecoyKind::Seeded;

    /** SDC only: number of qubits whose first non-Clifford gate is
     *  preserved as a seed. */
    int maxSeedQubits = 3;
};

/** A generated decoy plus its ideal-output bookkeeping. */
struct Decoy
{
    /** Physical-basis circuit, same CX structure as the input. */
    Circuit circuit{1};

    /** Noise-free output distribution (the known solution). */
    Distribution idealOutput;

    /** Shannon entropy of idealOutput (bits); low entropy = more
     *  sensitive to idling errors (Sec. 4.2.3). */
    double idealEntropy = 0.0;

    /** Wall-clock seconds spent computing idealOutput (Table 2's
     *  SDC-SimTime column). */
    double simTimeSec = 0.0;

    /** Number of non-Clifford gates remaining (0 for CDC/Trivial). */
    int nonCliffordGates = 0;
};

/**
 * Build the decoy of a compiled physical circuit.
 *
 * @pre @p physical is in the physical basis (RZ / SX / X / Y / CX).
 */
Decoy makeDecoy(const Circuit &physical, const DecoyOptions &options);

/**
 * Noise-free output distribution of a (decoy) circuit, via the
 * simulator-backend layer: Auto uses exact dense simulation when the
 * active-qubit count is small and stabilizer sampling otherwise
 * (Clifford circuits only).
 *
 * @param stabilizer_shots Shots used when falling back to the
 *        tableau simulator.
 * @param backend Backend override (Auto recommended).
 */
Distribution decoyIdealOutput(const Circuit &circuit,
                              int stabilizer_shots = 20000,
                              uint64_t seed = 12345,
                              BackendKind backend = BackendKind::Auto);

} // namespace adapt

#endif // ADAPT_ADAPT_DECOY_HH
