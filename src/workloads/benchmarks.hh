/**
 * @file
 * NISQ benchmark circuit generators (Table 4 of the paper):
 * Bernstein-Vazirani, Quantum Fourier Transform (two initial states),
 * QAOA MaxCut (two graph instances), a ripple-carry adder, and
 * quantum phase estimation.
 *
 * All generators return *logical* circuits with terminal
 * measurements; compile them with transpile() for a device.
 */

#ifndef ADAPT_WORKLOADS_BENCHMARKS_HH
#define ADAPT_WORKLOADS_BENCHMARKS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.hh"

namespace adapt
{

/**
 * Bernstein-Vazirani over @p num_qubits qubits (the last qubit is
 * the oracle ancilla; @p secret has num_qubits - 1 meaningful bits).
 * Ideal output: the secret string on the data bits.
 */
Circuit makeBernsteinVazirani(int num_qubits, uint64_t secret);

/** Initial state selector for the QFT benchmarks. */
enum class QftState
{
    A, //!< computational basis state |1010...>
    B, //!< product state from non-Clifford RY / T rotations
};

/**
 * QFT-n: prepare the selected initial state, apply the n-qubit
 * Fourier transform (controlled-phase ladder + reversal SWAPs), and
 * measure.
 */
Circuit makeQft(int num_qubits, QftState state);

/** Graph instance selector for QAOA. */
enum class QaoaGraph
{
    A, //!< ring graph (n edges)
    B, //!< ring plus random chords (denser, deeper)
};

/**
 * Single-layer (p = 1) QAOA MaxCut ansatz on the selected graph with
 * non-Clifford (gamma, beta) angles, measured on all qubits.
 */
Circuit makeQaoa(int num_qubits, QaoaGraph graph, uint64_t seed = 7);

/**
 * Ripple-carry adder (Cuccaro MAJ/UMA) computing a + b for
 * @p bits_per_operand-bit operands; 2 * bits + 2 qubits total.
 * The default 1-bit instance is the paper's 4-qubit ADDER.
 */
Circuit makeAdder(int bits_per_operand = 1, uint64_t a = 1,
                  uint64_t b = 1);

/**
 * Quantum phase estimation of a phase gate U1(2 pi phase) with
 * @p counting_qubits counting qubits + 1 eigenstate qubit.
 * QPEA-5 of the paper is makeQpe(4, 1.0 / 8.0).
 */
Circuit makeQpe(int counting_qubits, double phase);

/**
 * Repetition-code syndrome extraction with live feedback: a dynamic
 * (mid-circuit measurement) workload for the batch frame engine.
 *
 * @p data_qubits data qubits interleaved with data_qubits - 1
 * syndrome ancillas on a line (2 * data_qubits - 1 qubits total),
 * encoded into the logical |+> of the Z-repetition code (a GHZ
 * chain).  Each of the @p rounds extraction rounds entangles every
 * ancilla with its two data neighbours (CX pairs), measures it into
 * a per-ancilla classical bit that is *reused* across rounds, feeds
 * the syndrome bit back as a conditional X on the right-hand data
 * neighbour, and actively resets the ancilla.  A terminal data
 * readout follows on clbits [data_qubits - 1, 2 * data_qubits - 1).
 *
 * All-Clifford by construction: noiseless ancilla outcomes are
 * deterministic (the stabilizers are +1), so every coin, branch, and
 * feedback fire is noise-induced — the syndrome circuit the paper's
 * serving scenarios batch at scale.
 */
Circuit makeSyndromeExtraction(int data_qubits, int rounds);

/** A named benchmark instance. */
struct Workload
{
    std::string name;
    Circuit circuit;
};

/**
 * The benchmark suite of Table 4 (BV-7/8, QFT-6A/B, QFT-7A/B,
 * QAOA-8A/B, QAOA-10A/B, QPEA-5).
 */
std::vector<Workload> paperBenchmarks();

/** The small suite used for characterization tables (QFT-5, QAOA-5,
 *  Adder on 5-qubit machines; Table 1). */
std::vector<Workload> smallBenchmarks();

} // namespace adapt

#endif // ADAPT_WORKLOADS_BENCHMARKS_HH
