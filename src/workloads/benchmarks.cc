#include "workloads/benchmarks.hh"

#include <cmath>
#include <set>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace adapt
{

namespace
{

/** Controlled phase: CP(lambda) = diag(1, 1, 1, e^{i lambda}). */
void
cp(Circuit &c, double lambda, QubitId control, QubitId target)
{
    c.u1(lambda / 2.0, control);
    c.cx(control, target);
    c.u1(-lambda / 2.0, target);
    c.cx(control, target);
    c.u1(lambda / 2.0, target);
}

/** Toffoli via the standard 6-CX / 7-T decomposition. */
void
ccx(Circuit &c, QubitId a, QubitId b, QubitId t)
{
    c.h(t);
    c.cx(b, t);
    c.tdg(t);
    c.cx(a, t);
    c.t(t);
    c.cx(b, t);
    c.tdg(t);
    c.cx(a, t);
    c.t(b);
    c.t(t);
    c.h(t);
    c.cx(a, b);
    c.t(a);
    c.tdg(b);
    c.cx(a, b);
}

/** QFT rotation ladder + bit-reversal swaps on qubits [0, n). */
void
qftRotations(Circuit &c, int n)
{
    for (int i = n - 1; i >= 0; i--) {
        c.h(i);
        // ldexp, not (1 << (i - j)): a rotation spanning >= 31 bits
        // overflows the signed shift on wide registers.
        for (int j = i - 1; j >= 0; j--)
            cp(c, std::ldexp(kPi, -(i - j)), j, i);
    }
    for (int i = 0; i < n / 2; i++)
        c.swap(i, n - 1 - i);
}

/** Inverse QFT on qubits [0, n) (exact inverse of qftRotations). */
void
inverseQftRotations(Circuit &c, int n)
{
    for (int i = 0; i < n / 2; i++)
        c.swap(i, n - 1 - i);
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < i; j++)
            cp(c, -std::ldexp(kPi, -(i - j)), j, i);
        c.h(i);
    }
}

} // namespace

Circuit
makeBernsteinVazirani(int num_qubits, uint64_t secret)
{
    require(num_qubits >= 2, "BV needs at least one data qubit");
    const int data = num_qubits - 1;
    const QubitId ancilla = num_qubits - 1;
    Circuit c(num_qubits, data);

    c.x(ancilla);
    c.h(ancilla);
    for (QubitId q = 0; q < data; q++)
        c.h(q);
    for (QubitId q = 0; q < data; q++) {
        if (secret & (uint64_t{1} << q))
            c.cx(q, ancilla);
    }
    for (QubitId q = 0; q < data; q++)
        c.h(q);
    for (QubitId q = 0; q < data; q++)
        c.measure(q, q);
    return c;
}

Circuit
makeQft(int num_qubits, QftState state)
{
    // Phase-encoded input: prepare QFT|x> as a product state (H plus
    // per-qubit U1 phases), then apply the inverse Fourier transform.
    // The ideal output is peaked at |x>, so Fidelity = 1 - TVD is
    // sharply sensitive to idling errors.  Variant B encodes a
    // *fractional* x, spreading the peak over neighbouring outcomes
    // (a different input state with identical circuit structure).
    Circuit c(num_qubits);
    double x = 0.0;
    // ldexp throughout: 64-bit shifts overflow once the register
    // reaches 64 qubits (same class of bug as the rotation ladder).
    for (QubitId q = 0; q < num_qubits; q += 2)
        x += std::ldexp(1.0, q);
    if (state == QftState::B)
        x = x / 2.0 + 0.37;
    const double dim = std::ldexp(1.0, num_qubits);
    for (QubitId q = 0; q < num_qubits; q++) {
        c.h(q);
        const double phase = 2.0 * kPi * x * std::ldexp(1.0, q) / dim;
        c.u1(phase, q);
    }
    inverseQftRotations(c, num_qubits);
    c.measureAll();
    return c;
}

Circuit
makeQaoa(int num_qubits, QaoaGraph graph, uint64_t seed)
{
    require(num_qubits >= 3, "QAOA instance needs at least 3 qubits");
    std::vector<std::pair<QubitId, QubitId>> edges;
    std::set<std::pair<QubitId, QubitId>> seen;
    auto add_edge = [&](QubitId a, QubitId b) {
        if (a > b)
            std::swap(a, b);
        if (a != b && seen.insert({a, b}).second)
            edges.emplace_back(a, b);
    };
    for (QubitId q = 0; q < num_qubits; q++)
        add_edge(q, (q + 1) % num_qubits);
    if (graph == QaoaGraph::B) {
        Rng rng(seed);
        const int chords = num_qubits / 2;
        int added = 0;
        while (added < chords) {
            const auto a = static_cast<QubitId>(
                rng.uniformInt(static_cast<uint64_t>(num_qubits)));
            const auto b = static_cast<QubitId>(
                rng.uniformInt(static_cast<uint64_t>(num_qubits)));
            const size_t before = seen.size();
            add_edge(a, b);
            if (seen.size() != before)
                added++;
        }
    }

    // p = 1 MaxCut ansatz with non-Clifford angles.
    const double gamma = 0.7;
    const double beta = 0.4;
    Circuit c(num_qubits);
    for (QubitId q = 0; q < num_qubits; q++)
        c.h(q);
    for (const auto &[a, b] : edges) {
        c.cx(a, b);
        c.rz(2.0 * gamma, b);
        c.cx(a, b);
    }
    for (QubitId q = 0; q < num_qubits; q++)
        c.rx(2.0 * beta, q);
    c.measureAll();
    return c;
}

Circuit
makeAdder(int bits_per_operand, uint64_t a, uint64_t b)
{
    require(bits_per_operand >= 1, "adder needs at least 1 bit");
    const int bits = bits_per_operand;
    // Qubit layout (Cuccaro): 0 = carry-in, then (b_i, a_i) pairs,
    // last = carry-out.  4 qubits for the 1-bit paper ADDER.
    const int n = 2 * bits + 2;
    auto bq = [&](int i) { return 1 + 2 * i; };     // b_i
    auto aq = [&](int i) { return 2 + 2 * i; };     // a_i
    const QubitId cout = n - 1;
    Circuit c(n, bits + 1);

    for (int i = 0; i < bits; i++) {
        if (a & (uint64_t{1} << i))
            c.x(aq(i));
        if (b & (uint64_t{1} << i))
            c.x(bq(i));
    }

    auto maj = [&](QubitId x, QubitId y, QubitId z) {
        c.cx(z, y);
        c.cx(z, x);
        ccx(c, x, y, z);
    };
    auto uma = [&](QubitId x, QubitId y, QubitId z) {
        ccx(c, x, y, z);
        c.cx(z, x);
        c.cx(x, y);
    };

    maj(0, bq(0), aq(0));
    for (int i = 1; i < bits; i++)
        maj(aq(i - 1), bq(i), aq(i));
    c.cx(aq(bits - 1), cout);
    for (int i = bits - 1; i >= 1; i--)
        uma(aq(i - 1), bq(i), aq(i));
    uma(0, bq(0), aq(0));

    // Sum lands on the b register; carry-out on the last qubit.
    for (int i = 0; i < bits; i++)
        c.measure(bq(i), i);
    c.measure(cout, bits);
    return c;
}

Circuit
makeQpe(int counting_qubits, double phase)
{
    require(counting_qubits >= 1, "QPE needs a counting register");
    const int n = counting_qubits + 1;
    const QubitId eigen = counting_qubits;
    Circuit c(n, counting_qubits);

    c.x(eigen); // |1> eigenstate of U1(theta)
    for (QubitId q = 0; q < counting_qubits; q++)
        c.h(q);
    for (int k = 0; k < counting_qubits; k++) {
        const double lambda =
            2.0 * kPi * phase * static_cast<double>(uint64_t{1} << k);
        cp(c, lambda, k, eigen);
    }
    inverseQftRotations(c, counting_qubits);
    for (QubitId q = 0; q < counting_qubits; q++)
        c.measure(q, q);
    return c;
}

Circuit
makeSyndromeExtraction(int data_qubits, int rounds)
{
    require(data_qubits >= 2,
            "syndrome extraction needs at least two data qubits");
    require(rounds >= 1,
            "syndrome extraction needs at least one round");
    const int n = 2 * data_qubits - 1;
    const int ancillas = data_qubits - 1;
    Circuit c(n, ancillas + data_qubits);

    // Encode logical |+>: GHZ chain over the data qubits (even
    // indices).  Data neighbours are distance 2 on the line, so each
    // chain CX routes through the ancilla between them with the
    // 4-CX distance-2 CNOT identity (middle in any state).
    c.h(0);
    for (int i = 1; i < data_qubits; i++) {
        const QubitId m = 2 * i - 1;
        c.cx(2 * (i - 1), m);
        c.cx(m, 2 * i);
        c.cx(2 * (i - 1), m);
        c.cx(m, 2 * i);
    }

    for (int r = 0; r < rounds; r++) {
        for (int i = 0; i < ancillas; i++) {
            const QubitId a = 2 * i + 1;
            c.cx(2 * i, a);
            c.cx(2 * i + 2, a);
        }
        for (int i = 0; i < ancillas; i++) {
            const QubitId a = 2 * i + 1;
            c.measure(a, i); // clbit i reused every round
            c.xIf(2 * i + 2, i);
            c.reset(a);
        }
    }
    for (int i = 0; i < data_qubits; i++)
        c.measure(2 * i, ancillas + i);
    return c;
}

std::vector<Workload>
paperBenchmarks()
{
    std::vector<Workload> suite;
    suite.push_back({"BV-7", makeBernsteinVazirani(7, 0b101011)});
    suite.push_back({"BV-8", makeBernsteinVazirani(8, 0b1011011)});
    suite.push_back({"QFT-6A", makeQft(6, QftState::A)});
    suite.push_back({"QFT-6B", makeQft(6, QftState::B)});
    suite.push_back({"QFT-7A", makeQft(7, QftState::A)});
    suite.push_back({"QFT-7B", makeQft(7, QftState::B)});
    suite.push_back({"QAOA-8A", makeQaoa(8, QaoaGraph::A)});
    suite.push_back({"QAOA-8B", makeQaoa(8, QaoaGraph::B)});
    suite.push_back({"QAOA-10A", makeQaoa(10, QaoaGraph::A)});
    suite.push_back({"QAOA-10B", makeQaoa(10, QaoaGraph::B)});
    suite.push_back({"QPEA-5", makeQpe(4, 1.0 / 8.0)});
    return suite;
}

std::vector<Workload>
smallBenchmarks()
{
    std::vector<Workload> suite;
    suite.push_back({"QFT-5", makeQft(5, QftState::A)});
    suite.push_back({"QAOA-5", makeQaoa(5, QaoaGraph::A)});
    suite.push_back({"Adder", makeAdder(1, 1, 1)});
    return suite;
}

} // namespace adapt
