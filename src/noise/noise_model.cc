#include "noise/noise_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace adapt
{

OuProcess::OuProcess(double sigma_rad_per_us, double tau_us, Rng &rng)
    : sigma_(sigma_rad_per_us), tau_(tau_us), lastTimeUs_(0.0)
{
    require(sigma_rad_per_us >= 0.0, "OU sigma must be non-negative");
    require(tau_us > 0.0, "OU correlation time must be positive");
    lastValue_ = rng.normal(0.0, sigma_); // stationary initial state
}

double
OuProcess::at(double t_us, Rng &rng)
{
    require(t_us >= lastTimeUs_ - 1e-12,
            "OU process sampled backwards in time");
    const double dt = std::max(0.0, t_us - lastTimeUs_);
    if (dt > 0.0) {
        const double decay = ouDecayFactor(dt, tau_);
        const double innovation_sd = ouInnovationSd(sigma_, decay);
        lastValue_ = lastValue_ * decay + rng.normal(0.0, innovation_sd);
        lastTimeUs_ = t_us;
    }
    return lastValue_;
}

} // namespace adapt
