#include "noise/compiled.hh"

#include <cmath>
#include <cstring>
#include <type_traits>
#include <utility>

#include "circuit/clifford1q.hh"
#include "common/env.hh"
#include "common/logging.hh"
#include "sim/backend.hh"
#include "sim/stabilizer.hh"

namespace adapt
{

// ------------------------------------------------------------------
// Plan lowering (shared with the interpreted reference path).
// ------------------------------------------------------------------

namespace
{

/**
 * Pauli code of a conditional gate's action (engine packing 1 = X,
 * 2 = Y, 3 = Z), 0 for identity, -1 for non-Pauli.  The transpiler
 * lowers conditional unitaries to physical pulses ({X, Y, SX, RZ}
 * with the condition carried), so a conditional SX or quarter-turn
 * RZ is the non-Pauli case that keeps a job off the frame engine.
 */
int
condPauliCode(const Gate &gate)
{
    switch (gate.type) {
      case GateType::I: return 0;
      case GateType::X: return 1;
      case GateType::Y: return 2;
      case GateType::Z: return 3;
      case GateType::RZ:
      case GateType::U1:
        if (!gate.isClifford())
            return -1;
        switch (cliffordQuarterTurns(gate.params[0])) {
          case 0: return 0;
          case 2: return 3;
          default: return -1;
        }
      default:
        return -1;
    }
}

} // namespace

ProgramSkeleton
buildPlanSkeleton(const ScheduledCircuit &sched,
                  const NoiseFlags &flags)
{
    (void)flags; // lowering is flag-independent today
    ProgramSkeleton skel;
    ExecutionPlan &plan = skel.plan;

    // Dense-qubit relabelling: only qubits that execute ops occupy
    // state-vector space.
    const int n_phys = sched.numQubits();
    std::vector<int> dense(static_cast<size_t>(n_phys), -1);
    for (QubitId q = 0; q < n_phys; q++) {
        if (!sched.qubitOps(q).empty()) {
            dense[static_cast<size_t>(q)] =
                static_cast<int>(plan.active.size());
            plan.active.push_back(q);
        }
    }
    require(!plan.active.empty(), "cannot run an empty schedule");

    // Link-activity windows, recorded per scheduled link so the bind
    // phase can expand crosstalk sources against any calibration
    // without re-walking the schedule.  Links without activity
    // contribute no sources and are skipped, exactly like the legacy
    // per-link gather.
    plan.xtalk.resize(plan.active.size());
    int max_link = -1;
    for (const TimedOp &op : sched.ops())
        max_link = std::max(max_link, op.linkIndex);
    for (int li = 0; li <= max_link; li++) {
        auto intervals = sched.linkActivity(li);
        if (intervals.empty())
            continue;
        skel.linkWindows.push_back({li, std::move(intervals)});
    }

    // Back-to-back single-qubit ops (decomposed gates, DD pulse
    // trains) are fused into one step: per-pulse *errors* are still
    // sampled individually, but the state vector is touched once per
    // train instead of once per pulse.  This keeps dense XY4 fills
    // (1000+ pulses on long idle windows) affordable.
    std::vector<PlanStep> &steps = plan.steps;
    steps.reserve(sched.ops().size());
    std::vector<int> open(plan.active.size(), -1);

    for (const TimedOp &op : sched.ops()) {
        const Gate &gate = op.gate;
        if (gate.type == GateType::Delay ||
            gate.type == GateType::Barrier || gate.type == GateType::I)
            continue;

        if (gate.condBit >= 0) {
            // Classically-controlled pulse: a standalone step (never
            // fused — it executes in a data-dependent subset of
            // shots) that carries no gate-error channel, so RNG
            // consumption stays a fixed property of the program on
            // every engine.
            const int dq = dense[static_cast<size_t>(gate.qubit())];
            open[static_cast<size_t>(dq)] = -1;
            PlanStep step;
            step.kind = PlanStep::Kind::Cond1Q;
            step.q = dq;
            step.start = op.start;
            step.end = op.end;
            step.condBit = gate.condBit;
            plan.maxClbit = std::max(plan.maxClbit, gate.condBit);
            plan.clifford = plan.clifford && gate.isClifford();
            if (condPauliCode(gate) < 0)
                plan.condNonPauli = true;
            Gate mapped = gate;
            mapped.qubits[0] = dq;
            step.pulses.push_back({std::move(mapped), gateMatrix(gate),
                                   0.0});
            steps.push_back(std::move(step));
            continue;
        }

        if (gate.type == GateType::Reset) {
            const int dq = dense[static_cast<size_t>(gate.qubit())];
            open[static_cast<size_t>(dq)] = -1;
            PlanStep step;
            step.kind = PlanStep::Kind::Reset;
            step.q = dq;
            step.start = op.start;
            step.end = op.end;
            steps.push_back(std::move(step));
            continue;
        }

        if (gate.type == GateType::Measure) {
            const int dq = dense[static_cast<size_t>(gate.qubit())];
            open[static_cast<size_t>(dq)] = -1;
            PlanStep step;
            step.kind = PlanStep::Kind::Meas;
            step.q = dq;
            step.start = op.start;
            step.end = op.end;
            step.clbit = gate.clbit < 0 ? static_cast<int>(gate.qubit())
                                        : gate.clbit;
            plan.maxClbit = std::max(plan.maxClbit, step.clbit);
            steps.push_back(std::move(step));
            continue;
        }

        if (isTwoQubitGate(gate.type)) {
            const int da = dense[static_cast<size_t>(gate.qubits[0])];
            const int db = dense[static_cast<size_t>(gate.qubits[1])];
            open[static_cast<size_t>(da)] = -1;
            open[static_cast<size_t>(db)] = -1;
            PlanStep step;
            step.kind = PlanStep::Kind::TwoQubit;
            step.q = da;
            step.q2 = db;
            step.start = op.start;
            step.end = op.end;
            step.twoQubitType = gate.type;
            require(op.linkIndex >= 0 || gate.type != GateType::CX,
                    "scheduled CX without a link index");
            step.linkIndex = op.linkIndex;
            steps.push_back(std::move(step));
            continue;
        }

        // Single-qubit unitary: fuse with the previous step when they
        // touch (gap below 1 ps) on this qubit.
        const int dq = dense[static_cast<size_t>(gate.qubit())];
        const bool physical_pulse =
            gate.type == GateType::X || gate.type == GateType::Y ||
            gate.type == GateType::SX || gate.type == GateType::SXdg;
        plan.clifford = plan.clifford && gate.isClifford();
        Gate mapped = gate;
        mapped.qubits[0] = dq;
        Pulse pulse{std::move(mapped), gateMatrix(gate), 0.0,
                    physical_pulse};
        const int open_idx = open[static_cast<size_t>(dq)];
        if (open_idx >= 0 &&
            op.start - steps[static_cast<size_t>(open_idx)].end < 1e-3) {
            steps[static_cast<size_t>(open_idx)].pulses.push_back(
                std::move(pulse));
            steps[static_cast<size_t>(open_idx)].end =
                std::max(steps[static_cast<size_t>(open_idx)].end,
                         op.end);
            continue;
        }
        PlanStep step;
        step.kind = PlanStep::Kind::Fused1Q;
        step.q = dq;
        step.start = op.start;
        step.end = op.end;
        step.pulses.push_back(std::move(pulse));
        open[static_cast<size_t>(dq)] = static_cast<int>(steps.size());
        steps.push_back(std::move(step));
    }
    return skel;
}

ExecutionPlan
bindPlan(const ProgramSkeleton &skel, const Calibration &cal,
         const NoiseFlags &flags)
{
    ExecutionPlan plan = skel.plan;

    // Crosstalk sources per active qubit: every CX interval on a link
    // with a non-negligible coupling to this spectator, expanded from
    // the recorded link-activity windows in the legacy gather order
    // (link ascending, spectator ascending, windows in time order).
    if (flags.crosstalk) {
        for (const LinkWindows &lw : skel.linkWindows) {
            for (size_t ai = 0; ai < plan.active.size(); ai++) {
                const double rate =
                    cal.crosstalk(lw.link, plan.active[ai]);
                if (std::abs(rate) < 1e-6)
                    continue;
                for (const auto &[t0, t1] : lw.windows)
                    plan.xtalk[ai].push_back({t0, t1, rate});
            }
        }
    }

    for (PlanStep &step : plan.steps) {
        switch (step.kind) {
          case PlanStep::Kind::Meas: {
            const auto &qc = cal.qubits[static_cast<size_t>(
                plan.active[static_cast<size_t>(step.q)])];
            step.err01 = qc.readoutError01;
            step.err10 = qc.readoutError10;
            break;
          }
          case PlanStep::Kind::TwoQubit:
            step.cxError =
                step.linkIndex >= 0
                    ? cal.links[static_cast<size_t>(step.linkIndex)]
                          .cxError
                    : 0.0;
            break;
          case PlanStep::Kind::Fused1Q: {
            const auto &qc = cal.qubits[static_cast<size_t>(
                plan.active[static_cast<size_t>(step.q)])];
            for (Pulse &pulse : step.pulses)
                pulse.errorProb = pulse.physical ? qc.gateError1Q : 0.0;
            break;
          }
          case PlanStep::Kind::Reset:
          case PlanStep::Kind::Cond1Q:
            break;
        }
    }
    return plan;
}

ExecutionPlan
buildPlan(const ScheduledCircuit &sched, const Calibration &cal,
          const NoiseFlags &flags)
{
    return bindPlan(buildPlanSkeleton(sched, flags), cal, flags);
}

// ------------------------------------------------------------------
// Compilation.
// ------------------------------------------------------------------

namespace
{

/** Suffix splice tables cost O(pulses^2) matrix products to build;
 *  trains longer than this (dense DD fills) fall back to an
 *  arithmetically identical sequential fold on the rare error shot. */
constexpr uint32_t kSuffixTablePulses = 64;

} // namespace

ShotTables
buildShotTables(const ExecutionPlan &plan)
{
    ShotTables tables;
    tables.perStep.resize(plan.steps.size());
    for (size_t si = 0; si < plan.steps.size(); si++) {
        const PlanStep &step = plan.steps[si];
        ShotTables::StepRef &ref = tables.perStep[si];
        if (step.kind == PlanStep::Kind::Cond1Q) {
            ref.mat = static_cast<uint32_t>(tables.matrices.size());
            tables.matrices.push_back(step.pulses[0].matrix);
            continue;
        }
        if (step.kind != PlanStep::Kind::Fused1Q)
            continue;
        const auto k = static_cast<uint32_t>(step.pulses.size());

        // prefix[i] = fold of pulses 0..i, accumulated exactly like
        // the interpreter's running product (including the initial
        // multiply by identity).
        ref.mat = static_cast<uint32_t>(tables.matrices.size());
        Matrix2 acc = Matrix2::identity();
        for (const Pulse &pulse : step.pulses) {
            acc = pulse.matrix * acc;
            tables.matrices.push_back(acc);
        }

        // suffix[i] = fold of pulses i+1..end from identity — the
        // exact product the interpreter would re-accumulate after an
        // error at pulse i (O(k^2) to build, so capped).
        if (k <= kSuffixTablePulses) {
            ref.suffixOff = static_cast<uint32_t>(tables.matrices.size());
            for (uint32_t i = 0; i < k; i++) {
                Matrix2 tail = Matrix2::identity();
                for (uint32_t j = i + 1; j < k; j++)
                    tail = step.pulses[j].matrix * tail;
                tables.matrices.push_back(tail);
            }
        }
    }
    return tables;
}

ShotProgram
bindShotProgram(const ExecutionPlan &plan, const ShotTables &tables,
                const Calibration &cal, const NoiseFlags &flags)
{
    ShotProgram prog;
    prog.numQubits = static_cast<int>(plan.active.size());
    prog.numClbits = plan.maxClbit + 1;
    prog.flags = flags;
    prog.matrices = tables.matrices;

    if (flags.ouDephasing) {
        prog.ouSigma.reserve(plan.active.size());
        for (QubitId q : plan.active) {
            prog.ouSigma.push_back(
                cal.qubits[static_cast<size_t>(q)].ouSigmaRadPerUs);
        }
    }

    // Compile-time mirror of the interpreter's per-qubit trackers.
    std::vector<TimeNs> last_end(plan.active.size(), -1.0);
    std::vector<double> ou_last_us(plan.active.size(), 0.0);

    auto pushOp = [&](OpRef::Kind kind, uint32_t idx, bool fast) {
        prog.ops.push_back({kind, idx});
        if (fast)
            prog.fastOps.push_back({kind, idx});
    };

    // Coherent (refocusable) idle noise over [t0, t1): mirrors
    // coherent_idle_noise in the interpreter, including its draw
    // conditions, with every shot-invariant value precomputed.
    auto emitCoherent = [&](int dq, TimeNs t0, TimeNs t1) {
        if (t1 - t0 <= 1e-9)
            return;
        const auto ai = static_cast<size_t>(dq);
        const double dt_us = (t1 - t0) * kNsToUs;

        CoherentOp c;
        c.q = dq;
        c.gapDtUs = dt_us;
        c.termsOff = static_cast<uint32_t>(prog.xtalkTerms.size());
        if (flags.crosstalk) {
            for (const CrosstalkSource &src : plan.xtalk[ai]) {
                prog.xtalkTerms.push_back(
                    src.radPerUs *
                    overlapUs(t0, t1, src.start, src.end));
            }
        }
        c.termsCnt = static_cast<uint32_t>(prog.xtalkTerms.size()) -
                     c.termsOff;

        if (flags.ouDephasing) {
            // Precompute the OU transition for this gap's midpoint.
            const double mid_us = (t0 + t1) / 2.0 * kNsToUs;
            require(mid_us >= ou_last_us[ai] - 1e-12,
                    "OU process sampled backwards in time");
            const double dt = std::max(0.0, mid_us - ou_last_us[ai]);
            if (dt > 0.0) {
                const auto &qc =
                    cal.qubits[static_cast<size_t>(plan.active[ai])];
                const double decay = ouDecayFactor(dt, qc.ouTauUs);
                c.ouKind = 2;
                c.ouDecay = decay;
                c.ouSd = ouInnovationSd(qc.ouSigmaRadPerUs, decay);
                ou_last_us[ai] = mid_us;
            } else {
                c.ouKind = 1;
            }
            const bool twirl = flags.twirlCoherent;
            if (!twirl)
                c.phaseSlot = prog.phaseSlots++;
            prog.coherent.push_back(c);
            pushOp(OpRef::Kind::Coherent,
                   static_cast<uint32_t>(prog.coherent.size()) - 1,
                   /*fast=*/!twirl);
            return;
        }

        // OU disabled: the phase is shot-invariant.  Fold it here
        // with the interpreter's exact accumulation order.
        double phase = 0.0;
        for (uint32_t t = 0; t < c.termsCnt; t++)
            phase += prog.xtalkTerms[c.termsOff + t];
        if (phase == 0.0) {
            // The interpreter applies nothing and draws nothing.
            prog.xtalkTerms.resize(c.termsOff);
            return;
        }
        if (flags.twirlCoherent) {
            c.twirlThresh =
                bernoulliThreshold(twirlZProbability(phase));
            prog.coherent.push_back(c);
            pushOp(OpRef::Kind::Coherent,
                   static_cast<uint32_t>(prog.coherent.size()) - 1,
                   /*fast=*/false);
        } else {
            c.staticPhi = phase;
            prog.coherent.push_back(c);
            pushOp(OpRef::Kind::Coherent,
                   static_cast<uint32_t>(prog.coherent.size()) - 1,
                   /*fast=*/true);
        }
    };

    // Markovian noise over dt_us of wall-clock time: both flip
    // probabilities collapse to fixed-point thresholds.
    auto emitMarkov = [&](int dq, double dt_us) {
        if (dt_us <= 0.0)
            return;
        if (!flags.t1Damping && !flags.whiteDephasing)
            return;
        const auto &qc = cal.qubits[static_cast<size_t>(
            plan.active[static_cast<size_t>(dq)])];
        MarkovOp m;
        m.q = dq;
        if (flags.t1Damping) {
            m.t1Thresh = bernoulliThreshold(
                t1JumpProbability(dt_us, qc.t1Us));
        }
        if (flags.whiteDephasing) {
            m.dephThresh = bernoulliThreshold(
                whiteDephasingFlipProbability(dt_us, qc.t2WhiteUs));
        }
        prog.markov.push_back(m);
        pushOp(OpRef::Kind::Markov,
               static_cast<uint32_t>(prog.markov.size()) - 1,
               /*fast=*/false);
    };

    auto catchUp = [&](int dq, const PlanStep &step) {
        const auto ai = static_cast<size_t>(dq);
        if (last_end[ai] >= 0.0) {
            emitCoherent(dq, last_end[ai], step.start);
            emitMarkov(dq, (step.end - last_end[ai]) * kNsToUs);
        } else {
            emitMarkov(dq, (step.end - step.start) * kNsToUs);
        }
        last_end[ai] = step.end;
    };

    for (size_t si = 0; si < plan.steps.size(); si++) {
        const PlanStep &step = plan.steps[si];
        switch (step.kind) {
          case PlanStep::Kind::Meas: {
            catchUp(step.q, step);
            MeasOp m;
            m.q = step.q;
            m.clbit = step.clbit;
            m.wordSlot = prog.measSlots++;
            m.thresh01 = bernoulliThreshold(step.err01);
            m.thresh10 = bernoulliThreshold(step.err10);
            prog.meas.push_back(m);
            pushOp(OpRef::Kind::Meas,
                   static_cast<uint32_t>(prog.meas.size()) - 1,
                   /*fast=*/true);
            break;
          }
          case PlanStep::Kind::Reset: {
            catchUp(step.q, step);
            ResetOp r;
            r.q = step.q;
            r.wordSlot = prog.measSlots++;
            prog.resets.push_back(r);
            pushOp(OpRef::Kind::Reset,
                   static_cast<uint32_t>(prog.resets.size()) - 1,
                   /*fast=*/true);
            break;
          }
          case PlanStep::Kind::Cond1Q: {
            catchUp(step.q, step);
            Cond1QOp c;
            c.q = step.q;
            c.condBit = step.condBit;
            c.mat = tables.perStep[si].mat;
            prog.cond.push_back(c);
            pushOp(OpRef::Kind::Cond1Q,
                   static_cast<uint32_t>(prog.cond.size()) - 1,
                   /*fast=*/true);
            break;
          }
          case PlanStep::Kind::TwoQubit: {
            catchUp(step.q, step);
            catchUp(step.q2, step);
            TwoQOp t;
            t.q = step.q;
            t.q2 = step.q2;
            t.type = step.twoQubitType;
            // The interpreter draws the error Bernoulli whenever gate
            // errors are enabled, even for a zero-error link, so a
            // threshold of 0 (consume, never fire) is not kNoDraw.
            if (flags.gateErrors)
                t.errThresh = bernoulliThreshold(step.cxError);
            prog.twoQ.push_back(t);
            pushOp(OpRef::Kind::TwoQ,
                   static_cast<uint32_t>(prog.twoQ.size()) - 1,
                   /*fast=*/true);
            break;
          }
          case PlanStep::Kind::Fused1Q: {
            catchUp(step.q, step);
            const auto k = static_cast<uint32_t>(step.pulses.size());
            Fused1QOp f;
            f.q = step.q;
            f.step = static_cast<uint32_t>(si);
            f.pulseCnt = k;

            // The splice tables (prefix, full, optional suffix
            // products) were built once with the skeleton; only their
            // offsets are stamped here.
            f.prefixOff = tables.perStep[si].mat;
            f.fullMat = f.prefixOff + k - 1;
            f.suffixOff = tables.perStep[si].suffixOff;

            f.errOff = static_cast<uint32_t>(prog.errChecks.size());
            if (flags.gateErrors) {
                for (uint32_t i = 0; i < k; i++) {
                    // The interpreter short-circuits on errorProb > 0
                    // before drawing, so zero-probability pulses
                    // consume no RNG word at all.
                    if (step.pulses[i].errorProb > 0.0) {
                        prog.errChecks.push_back(
                            {i, bernoulliThreshold(
                                    step.pulses[i].errorProb)});
                    }
                }
            }
            f.errCnt =
                static_cast<uint32_t>(prog.errChecks.size()) - f.errOff;

            prog.fused.push_back(f);
            pushOp(OpRef::Kind::Fused1Q,
                   static_cast<uint32_t>(prog.fused.size()) - 1,
                   /*fast=*/true);
            break;
          }
        }
    }
    return prog;
}

ShotProgram
compileShotProgram(const ExecutionPlan &plan, const Calibration &cal,
                   const NoiseFlags &flags)
{
    return bindShotProgram(plan, buildShotTables(plan), cal, flags);
}

// ------------------------------------------------------------------
// Frame-program compilation (stabilizer batch path).
// ------------------------------------------------------------------

namespace
{

/**
 * GL(2, F2) action of a Clifford on a Pauli frame's (x, z) bits,
 * stored as the images of the X and Z basis frames (signs dropped —
 * a frame's global phase never reaches an outcome).
 */
struct FrameMat
{
    uint8_t xx, xz; //!< image of X: (x bit, z bit)
    uint8_t zx, zz; //!< image of Z
};

constexpr FrameMat kFrameIdentity{1, 0, 0, 1};
constexpr FrameMat kFrameSwap{0, 1, 1, 0};     // H-like
constexpr FrameMat kFramePhase{1, 1, 0, 1};    // S-like: X -> Y
constexpr FrameMat kFrameHalfX{1, 0, 1, 1};    // SX-like: Z -> Y

inline bool
isFrameIdentity(FrameMat m)
{
    return m.xx == 1 && m.xz == 0 && m.zx == 0 && m.zz == 1;
}

/** Composition "apply @p first, then @p second". */
inline FrameMat
composeFrame(FrameMat second, FrameMat first)
{
    FrameMat r;
    r.xx = (first.xx & second.xx) ^ (first.xz & second.zx);
    r.xz = (first.xx & second.xz) ^ (first.xz & second.zz);
    r.zx = (first.zx & second.xx) ^ (first.zz & second.zx);
    r.zz = (first.zx & second.xz) ^ (first.zz & second.zz);
    return r;
}

/** Frame action of the named single-qubit Clifford generators (the
 *  realization alphabet of clifford1QGroup). */
FrameMat
frameMatOfNamed(GateType type)
{
    switch (type) {
      case GateType::I:
      case GateType::X:
      case GateType::Y:
      case GateType::Z:
        return kFrameIdentity; // Paulis act trivially up to sign
      case GateType::H:
        return kFrameSwap;
      case GateType::S:
      case GateType::Sdg:
        return kFramePhase;
      case GateType::SX:
      case GateType::SXdg:
        return kFrameHalfX;
      default:
        panic("frameMatOfNamed: " + gateName(type) +
              " is not a named 1Q Clifford generator");
    }
}

/** Frame action of any single-qubit Clifford gate instance,
 *  mirroring StabilizerState::applyGate's dispatch. */
FrameMat
frameMatOfGate(const Gate &gate)
{
    switch (gate.type) {
      case GateType::Barrier:
      case GateType::Delay:
        // Timing markers, not unitaries (buildPlan filters them out
        // of pulse trains today; identity keeps this total if that
        // ever changes).
        return kFrameIdentity;
      case GateType::I:
      case GateType::X:
      case GateType::Y:
      case GateType::Z:
      case GateType::H:
      case GateType::S:
      case GateType::Sdg:
      case GateType::SX:
      case GateType::SXdg:
        return frameMatOfNamed(gate.type);
      case GateType::RZ:
      case GateType::U1:
        switch (cliffordQuarterTurns(gate.params[0])) {
          case 1:
          case 3: return kFramePhase;
          default: return kFrameIdentity;
        }
      case GateType::RX:
        switch (cliffordQuarterTurns(gate.params[0])) {
          case 1:
          case 3: return kFrameHalfX;
          default: return kFrameIdentity;
        }
      case GateType::RY:
        switch (cliffordQuarterTurns(gate.params[0])) {
          case 1:
          case 3: return kFrameSwap;
          default: return kFrameIdentity;
        }
      case GateType::Measure:
        panic("frameMatOfGate cannot map Measure");
      default: {
        require(gate.isClifford(), "frameMatOfGate on non-Clifford "
                                   "gate " + gate.toString());
        const Clifford1Q &element =
            nearestClifford(gateMatrix(gate));
        require(unitaryDistance(gateMatrix(gate), element.matrix) <
                    1e-6,
                "Clifford gate not found in group table");
        FrameMat acc = kFrameIdentity;
        for (GateType g : element.gates)
            acc = composeFrame(frameMatOfNamed(g), acc);
        return acc;
      }
    }
}

/** Plane-transform class of a non-identity FrameMat. */
Frame1QKind
classifyFrameMat(FrameMat m)
{
    if (m.xx == 0 && m.xz == 1 && m.zx == 1 && m.zz == 0)
        return Frame1QKind::Hadamard;
    if (m.xx == 1 && m.xz == 1 && m.zx == 0 && m.zz == 1)
        return Frame1QKind::Phase;
    if (m.xx == 1 && m.xz == 0 && m.zx == 1 && m.zz == 1)
        return Frame1QKind::HalfX;
    if (m.xx == 0 && m.xz == 1 && m.zx == 1 && m.zz == 1)
        return Frame1QKind::CycleA;
    if (m.xx == 1 && m.xz == 1 && m.zx == 1 && m.zz == 0)
        return Frame1QKind::CycleB;
    panic("classifyFrameMat: singular or identity frame matrix");
}

/** Image of Pauli @p pauli (engine packing 1 = X, 2 = Y, 3 = Z)
 *  under conjugation by the Clifford with frame matrix @p m. */
uint8_t
mapPauliThrough(FrameMat m, int pauli)
{
    const uint8_t px = pauli == 1 || pauli == 2;
    const uint8_t pz = pauli == 2 || pauli == 3;
    const uint8_t ox = (px & m.xx) ^ (pz & m.zx);
    const uint8_t oz = (px & m.xz) ^ (pz & m.zz);
    if (ox && oz)
        return 2;
    if (ox)
        return 1;
    require(oz, "mapPauliThrough produced the identity");
    return 3;
}

/** Append a branch-flip support (X-qubit list, then Z-qubit list) to
 *  @p prog.flipQubits, writing the op's four offset/count fields. */
template <typename Op>
void
recordFlipSupport(FrameProgram &prog, Op &op,
                  const std::vector<QubitId> &flip_x,
                  const std::vector<QubitId> &flip_z)
{
    op.flipXOff = static_cast<uint32_t>(prog.flipQubits.size());
    op.flipXCnt = static_cast<uint32_t>(flip_x.size());
    for (QubitId q : flip_x)
        prog.flipQubits.push_back(static_cast<int>(q));
    op.flipZOff = static_cast<uint32_t>(prog.flipQubits.size());
    op.flipZCnt = static_cast<uint32_t>(flip_z.size());
    for (QubitId q : flip_z)
        prog.flipQubits.push_back(static_cast<int>(q));
}

/** Apply Pauli @p code (engine packing 1 = X, 2 = Y, 3 = Z) to the
 *  reference tableau. */
void
applyPauliToRef(StabilizerState &ref, int code, int q)
{
    switch (code) {
      case 1: ref.applyX(q); break;
      case 2: ref.applyY(q); break;
      case 3: ref.applyZ(q); break;
      default: panic("applyPauliToRef on a non-Pauli code");
    }
}

} // namespace

FrameSkeleton
buildFrameSkeleton(const ExecutionPlan &plan, const NoiseFlags &flags)
{
    require(plan.clifford,
            "frame program requires an all-Clifford executable");
    require(flags.pauliExpressible(),
            "frame program requires Pauli-expressible noise");
    require(!flags.ouDephasing,
            "frame program does not cover per-shot OU twirl draws; "
            "keep OU jobs on the per-shot stabilizer backend");
    require(!plan.condNonPauli,
            "frame program requires conditional gates to act as "
            "Paulis");

    FrameSkeleton skel;
    skel.branchDepth = static_cast<int>(
        envInt("ADAPT_FRAME_BRANCH_DEPTH", 8, 0, 64));

    // The noiseless reference simulation: advanced through the plan
    // in step order.  Everything it answers — measurement outcomes,
    // branch-flip Paulis, T1-checkpoint populations — depends only on
    // the circuit structure, never on calibration constants, so the
    // walk runs once per skeleton and its answers are recorded as
    // traces the bind phase replays against any device snapshot.
    StabilizerState ref(static_cast<int>(plan.active.size()));

    // The reference's recorded classical bits, updated at every
    // measurement (readout errors never apply to the noiseless
    // reference): conditional ops resolve against these, and the
    // reference *takes* the conditional branch its own bits select,
    // so later outcomes and populations see it.
    std::vector<uint8_t> refCl(
        static_cast<size_t>(plan.maxClbit + 1), 0);

    std::vector<TimeNs> last_end(plan.active.size(), -1.0);
    std::vector<QubitId> flip_x, flip_z;

    // One trace per Markov window the bind phase will consider, in
    // emission order: the gate conditions here are the exact
    // structure-only guards bindFrameProgram re-evaluates, so the
    // cursors stay in lock-step.
    auto traceMarkov = [&](int dq, double dt_us) {
        if (dt_us <= 0.0)
            return;
        if (!flags.t1Damping && !flags.whiteDephasing)
            return;
        FrameSkeleton::T1Trace trace;
        if (flags.t1Damping) {
            const double p1 = ref.populationOne(dq);
            if (p1 == 0.5) {
                trace.t1Ref = 2;
                if (skel.branchDepth > 0) {
                    const bool sup =
                        ref.measureFlipSupport(dq, flip_x, flip_z);
                    require(sup, "superposed T1 checkpoint with a "
                                 "deterministic Z measurement");
                    trace.flipX = flip_x;
                    trace.flipZ = flip_z;
                    // The branch-hop reference: postselect the
                    // excited branch, then the decay jump lands it
                    // in |0>.  The op index is stamped at bind time.
                    FrameT1Site site{ref, refCl, 0};
                    site.refAfterJump.postselect(dq, true);
                    site.refAfterJump.applyX(dq);
                    trace.site = static_cast<int>(skel.sites.size());
                    skel.sites.push_back(std::move(site));
                }
            } else {
                trace.t1Ref = p1 == 1.0 ? 1 : 0;
            }
        }
        skel.t1.push_back(std::move(trace));
    };

    auto catchUp = [&](int dq, const PlanStep &step) {
        const auto ai = static_cast<size_t>(dq);
        if (last_end[ai] >= 0.0) {
            // Coherent idle noise never queries the reference:
            // nothing to trace for it.
            traceMarkov(dq, (step.end - last_end[ai]) * kNsToUs);
        } else {
            traceMarkov(dq, (step.end - step.start) * kNsToUs);
        }
        last_end[ai] = step.end;
    };

    std::vector<FrameMat> suffix;

    for (const PlanStep &step : plan.steps) {
        switch (step.kind) {
          case PlanStep::Kind::Meas: {
            catchUp(step.q, step);
            FrameSkeleton::MeasTrace trace;
            trace.random =
                ref.measureFlipSupport(step.q, flip_x, flip_z);
            if (trace.random) {
                // Fix the reference on the outcome-0 branch; each
                // shot re-randomizes with a fresh coin, so the choice
                // is arbitrary (and keeps compilation seed-free).
                trace.refBit = 0;
                trace.flipX = flip_x;
                trace.flipZ = flip_z;
                ref.postselect(step.q, false);
            } else {
                trace.refBit =
                    ref.populationOne(step.q) == 1.0 ? 1 : 0;
            }
            refCl[static_cast<size_t>(step.clbit)] = trace.refBit;
            skel.meas.push_back(std::move(trace));
            break;
          }
          case PlanStep::Kind::TwoQubit: {
            catchUp(step.q, step);
            catchUp(step.q2, step);
            ref.applyGate(Gate(step.twoQubitType, {step.q, step.q2}));
            break;
          }
          case PlanStep::Kind::Fused1Q: {
            catchUp(step.q, step);
            const size_t k = step.pulses.size();

            // suffix[i] = frame action of pulses i+1 .. k-1: the
            // conjugation a mid-train error travels through once the
            // train is fused into a single transform.
            suffix.assign(k, kFrameIdentity);
            for (size_t i = k - 1; i > 0; i--) {
                suffix[i - 1] = composeFrame(
                    suffix[i], frameMatOfGate(step.pulses[i].gate));
            }
            const FrameMat full = composeFrame(
                suffix[0], frameMatOfGate(step.pulses[0].gate));

            // The train's Clifford product up to global phase, as a
            // named-gate realization: the deferred-lane tableau
            // replay needs it even when the frame action is the
            // identity (a Pauli train — DD padding — still flips
            // tableau signs).
            Matrix2 product = Matrix2::identity();
            for (const Pulse &pulse : step.pulses)
                product = pulse.matrix * product;
            const Clifford1Q &element = nearestClifford(product);
            require(unitaryDistance(product, element.matrix) < 1e-6,
                    "fused Clifford train not found in group table");

            FrameSkeleton::FusedTrace trace;
            trace.kind = isFrameIdentity(full)
                             ? Frame1QKind::Identity
                             : classifyFrameMat(full);
            FrameMat check = kFrameIdentity;
            for (GateType g : element.gates) {
                if (g == GateType::I)
                    continue;
                require(trace.namedCount < trace.named.size(),
                        "Clifford realization longer than the "
                        "Frame1QOp named-gate capacity");
                trace.named[trace.namedCount++] = g;
                check = composeFrame(frameMatOfNamed(g), check);
            }
            require(check.xx == full.xx && check.xz == full.xz &&
                        check.zx == full.zx && check.zz == full.zz,
                    "realization frame action diverged from the "
                    "fused train");

            // Suffix-conjugated Pauli images for every pulse: the
            // bind phase selects the error-carrying subset once the
            // per-pulse error probabilities are known.
            trace.mapped.resize(k);
            for (size_t i = 0; i < k; i++) {
                for (int p = 1; p <= 3; p++) {
                    trace.mapped[i][static_cast<size_t>(p - 1)] =
                        mapPauliThrough(suffix[i], p);
                }
            }
            skel.fused.push_back(std::move(trace));
            for (const Pulse &pulse : step.pulses)
                ref.applyGate(pulse.gate);
            break;
          }
          case PlanStep::Kind::Reset: {
            catchUp(step.q, step);
            FrameSkeleton::ResetTrace trace;
            trace.random =
                ref.measureFlipSupport(step.q, flip_x, flip_z);
            if (trace.random) {
                // The measurement half branches; the conditional-X
                // half rejoins both branches at |0>, so the
                // reference is outcome-independent — postselect 0
                // for free.
                trace.flipX = flip_x;
                trace.flipZ = flip_z;
                ref.postselect(step.q, false);
            } else if (ref.populationOne(step.q) == 1.0) {
                ref.applyX(step.q);
            }
            skel.resets.push_back(std::move(trace));
            break;
          }
          case PlanStep::Kind::Cond1Q: {
            catchUp(step.q, step);
            const int code = condPauliCode(step.pulses[0].gate);
            require(code >= 0, "conditional non-Pauli gate reached "
                               "the frame compiler");
            if (code == 0)
                break; // conditional identity: timing only
            if (refCl[static_cast<size_t>(step.condBit)] != 0) {
                // The reference takes its own branch: the Pauli's
                // sign action feeds later outcomes and populations.
                applyPauliToRef(ref, code, step.q);
            }
            break;
          }
        }
    }
    return skel;
}

FrameProgram
bindFrameProgram(const ExecutionPlan &plan, const FrameSkeleton &skel,
                 const Calibration &cal, const NoiseFlags &flags)
{
    require(plan.clifford,
            "frame program requires an all-Clifford executable");
    require(flags.pauliExpressible(),
            "frame program requires Pauli-expressible noise");
    require(!flags.ouDephasing,
            "frame program does not cover per-shot OU twirl draws; "
            "keep OU jobs on the per-shot stabilizer backend");
    require(!plan.condNonPauli,
            "frame program requires conditional gates to act as "
            "Paulis");

    FrameProgram prog;
    prog.numQubits = static_cast<int>(plan.active.size());
    prog.numClbits = plan.maxClbit + 1;
    prog.branchDepth = skel.branchDepth;
    // Lane width is a bind-time property: the skeleton (and so the
    // program cache) stays lane-independent, while every Sparse
    // anyThresh below is resolved for this width.
    prog.laneWords = frameLaneWordsFromEnv();
    const int frame_lanes = prog.laneCount();

    // Cursors into the recorded reference-walk traces, consumed in
    // lock-step with the structure-only guards the skeleton used.
    size_t fused_cursor = 0;
    size_t t1_cursor = 0;
    size_t meas_cursor = 0;
    size_t reset_cursor = 0;

    // The reference's classical bits, replayed from the measurement
    // traces so conditional ops resolve identically to the walk.
    std::vector<uint8_t> refCl(
        static_cast<size_t>(prog.numClbits), 0);
    std::vector<TimeNs> last_end(plan.active.size(), -1.0);

    // Coherent idle noise over [t0, t1): with OU excluded the phase
    // is shot-invariant, so the only emission is its static Pauli
    // twirl (same accumulation order as the interpreter).
    auto emitCoherent = [&](int dq, TimeNs t0, TimeNs t1) {
        if (t1 - t0 <= 1e-9)
            return;
        double phase = 0.0;
        if (flags.crosstalk) {
            for (const CrosstalkSource &src :
                 plan.xtalk[static_cast<size_t>(dq)]) {
                phase +=
                    src.radPerUs * overlapUs(t0, t1, src.start, src.end);
            }
        }
        if (phase == 0.0)
            return;
        require(flags.twirlCoherent,
                "coherent phase reached the frame compiler without "
                "twirlCoherent");
        FrameTwirlOp t;
        t.q = dq;
        t.prob = makeFrameBernoulli(twirlZProbability(phase),
                                     frame_lanes);
        if (t.prob.mode == FrameBernoulli::Mode::Never)
            return;
        prog.twirl.push_back(t);
        prog.ops.push_back(
            {FrameOpRef::Kind::Twirl,
             static_cast<uint32_t>(prog.twirl.size()) - 1});
    };

    auto emitMarkov = [&](int dq, double dt_us) {
        if (dt_us <= 0.0)
            return;
        if (!flags.t1Damping && !flags.whiteDephasing)
            return;
        require(t1_cursor < skel.t1.size(),
                "frame skeleton T1 traces out of sync with the plan");
        const FrameSkeleton::T1Trace &trace = skel.t1[t1_cursor++];
        const auto &qc = cal.qubits[static_cast<size_t>(
            plan.active[static_cast<size_t>(dq)])];
        FrameMarkovOp m;
        m.q = dq;
        if (flags.t1Damping) {
            const double gamma = t1JumpProbability(dt_us, qc.t1Us);
            m.gammaThresh = bernoulliThreshold(gamma);
            m.gamma = gamma;
            m.t1Ref = trace.t1Ref;
            if (trace.t1Ref == 2) {
                // Superposed reference: the jump fires with the
                // folded rate gamma * 1/2 and hands the lane to a
                // compiled branch tail — or, with tails disabled,
                // defers it to an exact per-shot rerun forced at
                // this ordinal.
                m.randT1Ordinal = prog.randomT1Count++;
                m.t1 = makeFrameBernoulli(gamma * 0.5, frame_lanes);
                if (prog.branchDepth > 0) {
                    recordFlipSupport(prog, m, trace.flipX,
                                      trace.flipZ);
                    // One site per random ordinal, even if the op
                    // below is elided (keeps the ordinal -> site
                    // indexing dense).
                    FrameT1Site site =
                        skel.sites[static_cast<size_t>(trace.site)];
                    site.opIndex =
                        static_cast<uint32_t>(prog.ops.size());
                    prog.t1Sites.push_back(std::move(site));
                }
            } else {
                m.t1 = makeFrameBernoulli(gamma, frame_lanes);
            }
        }
        if (flags.whiteDephasing) {
            m.deph = makeFrameBernoulli(
                whiteDephasingFlipProbability(dt_us, qc.t2WhiteUs),
                frame_lanes);
        }
        if (m.t1.mode == FrameBernoulli::Mode::Never &&
            m.deph.mode == FrameBernoulli::Mode::Never)
            return;
        prog.markov.push_back(m);
        prog.ops.push_back(
            {FrameOpRef::Kind::Markov,
             static_cast<uint32_t>(prog.markov.size()) - 1});
    };

    auto catchUp = [&](int dq, const PlanStep &step) {
        const auto ai = static_cast<size_t>(dq);
        if (last_end[ai] >= 0.0) {
            emitCoherent(dq, last_end[ai], step.start);
            emitMarkov(dq, (step.end - last_end[ai]) * kNsToUs);
        } else {
            emitMarkov(dq, (step.end - step.start) * kNsToUs);
        }
        last_end[ai] = step.end;
    };

    for (const PlanStep &step : plan.steps) {
        switch (step.kind) {
          case PlanStep::Kind::Meas: {
            catchUp(step.q, step);
            require(meas_cursor < skel.meas.size(),
                    "frame skeleton measurement traces out of sync "
                    "with the plan");
            const FrameSkeleton::MeasTrace &trace =
                skel.meas[meas_cursor++];
            FrameMeasOp m;
            m.q = step.q;
            m.clbit = step.clbit;
            m.random = trace.random;
            m.refBit = trace.refBit;
            if (m.random)
                recordFlipSupport(prog, m, trace.flipX, trace.flipZ);
            refCl[static_cast<size_t>(step.clbit)] = m.refBit;
            if (flags.measurementErrors) {
                m.err01 = makeFrameBernoulli(step.err01, frame_lanes);
                m.err10 = makeFrameBernoulli(step.err10, frame_lanes);
            }
            prog.meas.push_back(m);
            prog.ops.push_back(
                {FrameOpRef::Kind::Meas,
                 static_cast<uint32_t>(prog.meas.size()) - 1});
            break;
          }
          case PlanStep::Kind::TwoQubit: {
            catchUp(step.q, step);
            catchUp(step.q2, step);
            Frame2QOp g;
            g.a = step.q;
            g.b = step.q2;
            g.type = step.twoQubitType;
            prog.f2q.push_back(g);
            prog.ops.push_back(
                {FrameOpRef::Kind::F2Q,
                 static_cast<uint32_t>(prog.f2q.size()) - 1});
            if (flags.gateErrors && step.cxError > 0.0) {
                FrameErr2QOp e;
                e.a = step.q;
                e.b = step.q2;
                e.prob = makeFrameBernoulli(step.cxError, frame_lanes);
                prog.err2q.push_back(e);
                prog.ops.push_back(
                    {FrameOpRef::Kind::Err2Q,
                     static_cast<uint32_t>(prog.err2q.size()) - 1});
            }
            break;
          }
          case PlanStep::Kind::Fused1Q: {
            catchUp(step.q, step);
            require(fused_cursor < skel.fused.size(),
                    "frame skeleton fused traces out of sync with "
                    "the plan");
            const FrameSkeleton::FusedTrace &trace =
                skel.fused[fused_cursor++];
            Frame1QOp op;
            op.q = step.q;
            op.kind = trace.kind;
            op.namedCount = trace.namedCount;
            op.named = trace.named;
            if (op.kind != Frame1QKind::Identity ||
                op.namedCount != 0) {
                prog.f1q.push_back(op);
                prog.ops.push_back(
                    {FrameOpRef::Kind::F1Q,
                     static_cast<uint32_t>(prog.f1q.size()) - 1});
            }
            if (flags.gateErrors) {
                for (size_t i = 0; i < step.pulses.size(); i++) {
                    if (step.pulses[i].errorProb <= 0.0)
                        continue;
                    FrameErr1QOp e;
                    e.q = step.q;
                    e.prob =
                        makeFrameBernoulli(step.pulses[i].errorProb, frame_lanes);
                    for (size_t p = 0; p < 3; p++)
                        e.mapped[p] = trace.mapped[i][p];
                    prog.err1q.push_back(e);
                    prog.ops.push_back(
                        {FrameOpRef::Kind::Err1Q,
                         static_cast<uint32_t>(prog.err1q.size()) -
                             1});
                }
            }
            break;
          }
          case PlanStep::Kind::Reset: {
            catchUp(step.q, step);
            require(reset_cursor < skel.resets.size(),
                    "frame skeleton reset traces out of sync with "
                    "the plan");
            const FrameSkeleton::ResetTrace &trace =
                skel.resets[reset_cursor++];
            FrameResetOp r;
            r.q = step.q;
            r.random = trace.random;
            if (r.random)
                recordFlipSupport(prog, r, trace.flipX, trace.flipZ);
            prog.resets.push_back(r);
            prog.ops.push_back(
                {FrameOpRef::Kind::Reset,
                 static_cast<uint32_t>(prog.resets.size()) - 1});
            break;
          }
          case PlanStep::Kind::Cond1Q: {
            catchUp(step.q, step);
            const int code = condPauliCode(step.pulses[0].gate);
            require(code >= 0, "conditional non-Pauli gate reached "
                               "the frame compiler");
            if (code == 0)
                break; // conditional identity: timing only
            FrameCondOp c;
            c.q = step.q;
            c.condBit = step.condBit;
            c.pauli = static_cast<uint8_t>(code);
            c.refCond = refCl[static_cast<size_t>(step.condBit)];
            prog.cond.push_back(c);
            prog.ops.push_back(
                {FrameOpRef::Kind::Cond,
                 static_cast<uint32_t>(prog.cond.size()) - 1});
            break;
          }
        }
    }
    require(fused_cursor == skel.fused.size() &&
                t1_cursor == skel.t1.size() &&
                meas_cursor == skel.meas.size() &&
                reset_cursor == skel.resets.size(),
            "frame skeleton traces not fully consumed by the bind");
    prog.branchTails =
        prog.branchDepth > 0 && prog.randomT1Count > 0;
    return prog;
}

FrameProgram
compileFrameProgram(const ExecutionPlan &plan, const Calibration &cal,
                    const NoiseFlags &flags)
{
    return bindFrameProgram(plan, buildFrameSkeleton(plan, flags),
                            cal, flags);
}

FrameProgram
compileFrameTail(const FrameProgram &parent, uint32_t ordinal)
{
    require(ordinal < parent.t1Sites.size(),
            "compileFrameTail: checkpoint ordinal out of range");
    const FrameT1Site &site = parent.t1Sites[ordinal];
    const FrameMarkovOp &fired =
        parent.markov[parent.ops[site.opIndex].idx];

    FrameProgram prog;
    prog.numQubits = parent.numQubits;
    prog.numClbits = parent.numClbits;
    prog.branchDepth = parent.branchDepth - 1;
    prog.laneWords = parent.laneWords;

    // The post-jump reference and its recorded bits, advanced through
    // the parent's suffix to re-resolve everything
    // reference-dependent.
    StabilizerState ref = site.refAfterJump;
    std::vector<uint8_t> refCl = site.refCl;
    std::vector<QubitId> flip_x, flip_z;

    // The firing checkpoint's dephasing half was not yet drawn when
    // the lane left its walk: re-emit it as the tail's first op.
    if (fired.deph.mode != FrameBernoulli::Mode::Never) {
        FrameMarkovOp m;
        m.q = fired.q;
        m.deph = fired.deph;
        prog.markov.push_back(m);
        prog.ops.push_back(
            {FrameOpRef::Kind::Markov,
             static_cast<uint32_t>(prog.markov.size()) - 1});
    }

    for (uint32_t oi = site.opIndex + 1; oi < parent.ops.size();
         oi++) {
        const FrameOpRef op_ref = parent.ops[oi];
        switch (op_ref.kind) {
          case FrameOpRef::Kind::F1Q: {
            const Frame1QOp &op = parent.f1q[op_ref.idx];
            prog.f1q.push_back(op);
            prog.ops.push_back(
                {FrameOpRef::Kind::F1Q,
                 static_cast<uint32_t>(prog.f1q.size()) - 1});
            for (uint8_t i = 0; i < op.namedCount; i++)
                ref.applyGate(Gate(op.named[i], {op.q}));
            break;
          }
          case FrameOpRef::Kind::F2Q: {
            const Frame2QOp &op = parent.f2q[op_ref.idx];
            prog.f2q.push_back(op);
            prog.ops.push_back(
                {FrameOpRef::Kind::F2Q,
                 static_cast<uint32_t>(prog.f2q.size()) - 1});
            ref.applyGate(Gate(op.type, {op.a, op.b}));
            break;
          }
          case FrameOpRef::Kind::Err1Q:
            // Error channels copy verbatim: probabilities and
            // suffix-conjugated Pauli images are
            // reference-independent.
            prog.err1q.push_back(parent.err1q[op_ref.idx]);
            prog.ops.push_back(
                {FrameOpRef::Kind::Err1Q,
                 static_cast<uint32_t>(prog.err1q.size()) - 1});
            break;
          case FrameOpRef::Kind::Err2Q:
            prog.err2q.push_back(parent.err2q[op_ref.idx]);
            prog.ops.push_back(
                {FrameOpRef::Kind::Err2Q,
                 static_cast<uint32_t>(prog.err2q.size()) - 1});
            break;
          case FrameOpRef::Kind::Twirl:
            prog.twirl.push_back(parent.twirl[op_ref.idx]);
            prog.ops.push_back(
                {FrameOpRef::Kind::Twirl,
                 static_cast<uint32_t>(prog.twirl.size()) - 1});
            break;
          case FrameOpRef::Kind::Markov: {
            const FrameMarkovOp &pm = parent.markov[op_ref.idx];
            FrameMarkovOp m;
            m.q = pm.q;
            m.deph = pm.deph;
            m.gammaThresh = pm.gammaThresh;
            m.gamma = pm.gamma;
            if (pm.gamma > 0.0) {
                // Re-classify the T1 checkpoint against the jumped
                // reference: a deterministic parent checkpoint can
                // turn superposed here and vice versa.
                const double p1 = ref.populationOne(m.q);
                if (p1 == 0.5) {
                    m.t1Ref = 2;
                    m.randT1Ordinal = prog.randomT1Count++;
                    m.t1 = makeFrameBernoulli(pm.gamma * 0.5, parent.laneCount());
                    const bool sup =
                        ref.measureFlipSupport(m.q, flip_x, flip_z);
                    require(sup,
                            "superposed T1 checkpoint with a "
                            "deterministic Z measurement");
                    recordFlipSupport(prog, m, flip_x, flip_z);
                    // Tails record sites at every remaining depth:
                    // the depth-cap fallback needs the jumped
                    // reference even when no deeper tail compiles.
                    FrameT1Site s{
                        ref, refCl,
                        static_cast<uint32_t>(prog.ops.size())};
                    s.refAfterJump.postselect(m.q, true);
                    s.refAfterJump.applyX(m.q);
                    prog.t1Sites.push_back(std::move(s));
                } else {
                    m.t1Ref = p1 == 1.0 ? 1 : 0;
                    m.t1 = makeFrameBernoulli(pm.gamma, parent.laneCount());
                }
            }
            if (m.t1.mode == FrameBernoulli::Mode::Never &&
                m.deph.mode == FrameBernoulli::Mode::Never)
                break;
            prog.markov.push_back(m);
            prog.ops.push_back(
                {FrameOpRef::Kind::Markov,
                 static_cast<uint32_t>(prog.markov.size()) - 1});
            break;
          }
          case FrameOpRef::Kind::Meas: {
            const FrameMeasOp &pm = parent.meas[op_ref.idx];
            FrameMeasOp m;
            m.q = pm.q;
            m.clbit = pm.clbit;
            m.err01 = pm.err01;
            m.err10 = pm.err10;
            m.random = ref.measureFlipSupport(m.q, flip_x, flip_z);
            if (m.random) {
                m.refBit = 0;
                recordFlipSupport(prog, m, flip_x, flip_z);
                ref.postselect(m.q, false);
            } else {
                m.refBit = ref.populationOne(m.q) == 1.0 ? 1 : 0;
            }
            refCl[static_cast<size_t>(m.clbit)] = m.refBit;
            prog.meas.push_back(m);
            prog.ops.push_back(
                {FrameOpRef::Kind::Meas,
                 static_cast<uint32_t>(prog.meas.size()) - 1});
            break;
          }
          case FrameOpRef::Kind::Reset: {
            const FrameResetOp &pr = parent.resets[op_ref.idx];
            FrameResetOp r;
            r.q = pr.q;
            r.random = ref.measureFlipSupport(r.q, flip_x, flip_z);
            if (r.random) {
                recordFlipSupport(prog, r, flip_x, flip_z);
                ref.postselect(r.q, false);
            } else if (ref.populationOne(r.q) == 1.0) {
                ref.applyX(r.q);
            }
            prog.resets.push_back(r);
            prog.ops.push_back(
                {FrameOpRef::Kind::Reset,
                 static_cast<uint32_t>(prog.resets.size()) - 1});
            break;
          }
          case FrameOpRef::Kind::Cond: {
            FrameCondOp c = parent.cond[op_ref.idx];
            c.refCond = refCl[static_cast<size_t>(c.condBit)];
            if (c.refCond != 0)
                applyPauliToRef(ref, c.pauli, c.q);
            prog.cond.push_back(c);
            prog.ops.push_back(
                {FrameOpRef::Kind::Cond,
                 static_cast<uint32_t>(prog.cond.size()) - 1});
            break;
          }
        }
    }
    prog.branchTails =
        prog.branchDepth > 0 && prog.randomT1Count > 0;
    return prog;
}

const FrameProgram &
FrameTailCache::tail(const FrameProgram &parent, uint32_t ordinal)
{
    const std::pair<const FrameProgram *, uint32_t> key{&parent,
                                                        ordinal};
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = tails_.find(key);
        if (it != tails_.end())
            return *it->second;
    }
    // Compile outside the lock: deterministic output makes a racing
    // double-compile benign, and try_emplace keeps the first copy
    // (stable addresses for nested tail keys).
    auto compiled = std::make_unique<FrameProgram>(
        compileFrameTail(parent, ordinal));
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = tails_.try_emplace(key, std::move(compiled));
    return *it->second;
}

// ------------------------------------------------------------------
// Per-shot execution.
// ------------------------------------------------------------------

ShotReplayer::ShotReplayer(const ExecutionPlan &plan,
                           const ShotProgram &prog)
    : plan_(plan), prog_(prog), sv_(prog.numQubits),
      packer_(prog.numClbits),
      qubitRng_(static_cast<size_t>(prog.numQubits)),
      ouVal_(static_cast<size_t>(prog.numQubits), 0.0)
{
    tape_.events.reserve(64);
}

void
ShotReplayer::drawTape(const Rng &shot_rng, ShotTape &tape)
{
    const NoiseFlags &flags = prog_.flags;
    gateRng_ = shot_rng.fork(0x6a7e);
    const auto n = static_cast<size_t>(prog_.numQubits);
    for (size_t ai = 0; ai < n; ai++) {
        qubitRng_[ai] = shot_rng.fork(0x0b5e + ai);
        if (flags.ouDephasing) {
            // Stationary initial draw (OuProcess constructor).
            ouVal_[ai] = qubitRng_[ai].normal(0.0, prog_.ouSigma[ai]);
        }
    }
    // Every written slot is unconditionally overwritten before any
    // read (dynamic phases on emission, meas words per Meas / Reset
    // op), so resize without zeroing is safe.
    tape.phases.resize(prog_.phaseSlots);
    tape.measWord.resize(size_t{2} * prog_.measSlots);
    tape.events.clear();

    for (uint32_t i = 0; i < prog_.ops.size(); i++) {
        const OpRef ref = prog_.ops[i];
        switch (ref.kind) {
          case OpRef::Kind::Coherent: {
            const CoherentOp &c = prog_.coherent[ref.idx];
            const auto ai = static_cast<size_t>(c.q);
            if (c.ouKind != 0) {
                if (c.ouKind == 2) {
                    ouVal_[ai] = ouVal_[ai] * c.ouDecay +
                                 qubitRng_[ai].normal(0.0, c.ouSd);
                }
                double phase = 0.0;
                phase += ouVal_[ai] * c.gapDtUs;
                for (uint32_t t = 0; t < c.termsCnt; t++)
                    phase += prog_.xtalkTerms[c.termsOff + t];
                if (flags.twirlCoherent) {
                    if (phase != 0.0) {
                        if (qubitRng_[ai].bernoulli(
                                twirlZProbability(phase))) {
                            tape.events.push_back(
                                {i, 0, 0, ShotEvent::Kind::TwirlZ, 0,
                                 0});
                        }
                    }
                } else {
                    tape.phases[c.phaseSlot] = phase;
                }
            } else if (c.twirlThresh != kNoDraw) {
                if ((qubitRng_[ai].next() >> 11) < c.twirlThresh) {
                    tape.events.push_back(
                        {i, 0, 0, ShotEvent::Kind::TwirlZ, 0, 0});
                }
            }
            // Static non-twirl phases draw nothing.
            break;
          }
          case OpRef::Kind::Markov: {
            const MarkovOp &m = prog_.markov[ref.idx];
            const auto ai = static_cast<size_t>(m.q);
            if (m.t1Thresh != kNoDraw &&
                (qubitRng_[ai].next() >> 11) < m.t1Thresh) {
                // Reserve the population-conditional word; the replay
                // resolves it against the live state.
                tape.events.push_back({i, 0, qubitRng_[ai].next(),
                                       ShotEvent::Kind::T1Jump, 0, 0});
            }
            if (m.dephThresh != kNoDraw &&
                (qubitRng_[ai].next() >> 11) < m.dephThresh) {
                tape.events.push_back(
                    {i, 0, 0, ShotEvent::Kind::DephZ, 0, 0});
            }
            break;
          }
          case OpRef::Kind::Fused1Q: {
            const Fused1QOp &f = prog_.fused[ref.idx];
            for (uint32_t e = 0; e < f.errCnt; e++) {
                const PulseErrCheck &chk =
                    prog_.errChecks[f.errOff + e];
                if ((gateRng_.next() >> 11) < chk.thresh) {
                    const auto pauli = static_cast<uint8_t>(
                        gateRng_.uniformInt(3) + 1);
                    tape.events.push_back({i, chk.pulse, 0,
                                           ShotEvent::Kind::Err1Q,
                                           pauli, 0});
                }
            }
            break;
          }
          case OpRef::Kind::TwoQ: {
            const TwoQOp &t = prog_.twoQ[ref.idx];
            if (t.errThresh != kNoDraw &&
                (gateRng_.next() >> 11) < t.errThresh) {
                const auto code =
                    static_cast<int>(gateRng_.uniformInt(15)) + 1;
                tape.events.push_back(
                    {i, 0, 0, ShotEvent::Kind::Err2Q,
                     static_cast<uint8_t>(code & 3),
                     static_cast<uint8_t>(code >> 2)});
            }
            break;
          }
          case OpRef::Kind::Meas: {
            const MeasOp &m = prog_.meas[ref.idx];
            tape.measWord[size_t{2} * m.wordSlot] = gateRng_.next();
            tape.measWord[size_t{2} * m.wordSlot + 1] =
                flags.measurementErrors ? gateRng_.next() : 0;
            break;
          }
          case OpRef::Kind::Reset: {
            // One collapse word, like a measurement without readout
            // error; the conditional |1> -> |0> flip resolves in the
            // replay against the live state.
            const ResetOp &r = prog_.resets[ref.idx];
            tape.measWord[size_t{2} * r.wordSlot] = gateRng_.next();
            tape.measWord[size_t{2} * r.wordSlot + 1] = 0;
            break;
          }
          case OpRef::Kind::Cond1Q:
            // Conditional pulses carry no error channel: nothing to
            // draw, and the condition resolves in the replay.
            break;
        }
    }
}

void
ShotReplayer::replayRange(const std::vector<OpRef> &stream,
                          uint32_t first_op, const ShotTape &tape,
                          size_t cursor)
{
    const NoiseFlags &flags = prog_.flags;
    const std::vector<ShotEvent> &events = tape.events;
    const size_t n_events = events.size();

    for (uint32_t i = first_op; i < stream.size(); i++) {
        const OpRef ref = stream[i];
        switch (ref.kind) {
          case OpRef::Kind::Coherent: {
            const CoherentOp &c = prog_.coherent[ref.idx];
            if (flags.twirlCoherent) {
                if (cursor < n_events && events[cursor].op == i) {
                    sv_.apply1Q(pauliMatrix(3), c.q);
                    cursor++;
                }
                break;
            }
            const double phi = c.ouKind != 0
                                   ? tape.phases[c.phaseSlot]
                                   : c.staticPhi;
            if (phi != 0.0)
                sv_.applyPhase(c.q, phi);
            break;
          }
          case OpRef::Kind::Markov: {
            const MarkovOp &m = prog_.markov[ref.idx];
            while (cursor < n_events && events[cursor].op == i) {
                const ShotEvent &e = events[cursor++];
                if (e.kind == ShotEvent::Kind::T1Jump) {
                    const double p = sv_.populationOne(m.q);
                    const double u =
                        static_cast<double>(e.word >> 11) * 0x1.0p-53;
                    if (u < p)
                        sv_.applyDecayJump(m.q);
                } else { // DephZ
                    sv_.apply1Q(pauliMatrix(3), m.q);
                }
            }
            break;
          }
          case OpRef::Kind::Fused1Q: {
            const Fused1QOp &f = prog_.fused[ref.idx];
            if (cursor >= n_events || events[cursor].op != i) {
                sv_.apply1Q(prog_.matrices[f.fullMat], f.q);
                break;
            }
            // Error splice: prefix · Pauli · (segments) · suffix,
            // every product bit-identical to the interpreter's
            // running accumulation.
            const std::vector<Pulse> &pulses =
                plan_.steps[f.step].pulses;
            int64_t prev = -1;
            while (cursor < n_events && events[cursor].op == i) {
                const ShotEvent &e = events[cursor++];
                if (prev < 0) {
                    sv_.apply1Q(prog_.matrices[f.prefixOff + e.pulse],
                                f.q);
                } else {
                    Matrix2 seg = Matrix2::identity();
                    for (auto j = static_cast<uint32_t>(prev + 1);
                         j <= e.pulse; j++)
                        seg = pulses[j].matrix * seg;
                    sv_.apply1Q(seg, f.q);
                }
                sv_.apply1Q(pauliMatrix(e.a), f.q);
                prev = e.pulse;
            }
            if (f.suffixOff != kNoTable) {
                sv_.apply1Q(
                    prog_.matrices[f.suffixOff +
                                   static_cast<uint32_t>(prev)],
                    f.q);
            } else {
                Matrix2 tail = Matrix2::identity();
                for (auto j = static_cast<uint32_t>(prev + 1);
                     j < f.pulseCnt; j++)
                    tail = pulses[j].matrix * tail;
                sv_.apply1Q(tail, f.q);
            }
            break;
          }
          case OpRef::Kind::TwoQ: {
            const TwoQOp &t = prog_.twoQ[ref.idx];
            switch (t.type) {
              case GateType::CX: sv_.applyCX(t.q, t.q2); break;
              case GateType::CZ: sv_.applyCZ(t.q, t.q2); break;
              case GateType::SWAP: sv_.applySwap(t.q, t.q2); break;
              default:
                panic("compiled replay: unexpected two-qubit gate");
            }
            if (cursor < n_events && events[cursor].op == i) {
                const ShotEvent &e = events[cursor++];
                if (e.a != 0)
                    sv_.apply1Q(pauliMatrix(e.a), t.q);
                if (e.b != 0)
                    sv_.apply1Q(pauliMatrix(e.b), t.q2);
            }
            break;
          }
          case OpRef::Kind::Meas: {
            const MeasOp &m = prog_.meas[ref.idx];
            const uint64_t mw = tape.measWord[size_t{2} * m.wordSlot];
            const double u =
                static_cast<double>(mw >> 11) * 0x1.0p-53;
            bool bit = sv_.measureCollapse(m.q, u);
            if (flags.measurementErrors) {
                const uint64_t ew =
                    tape.measWord[size_t{2} * m.wordSlot + 1];
                if ((ew >> 11) < (bit ? m.thresh10 : m.thresh01))
                    bit = !bit;
            }
            packer_.set(m.clbit, bit);
            break;
          }
          case OpRef::Kind::Reset: {
            const ResetOp &r = prog_.resets[ref.idx];
            const uint64_t mw = tape.measWord[size_t{2} * r.wordSlot];
            const double u =
                static_cast<double>(mw >> 11) * 0x1.0p-53;
            if (sv_.measureCollapse(r.q, u))
                sv_.apply1Q(pauliMatrix(1), r.q);
            break;
          }
          case OpRef::Kind::Cond1Q: {
            const Cond1QOp &c = prog_.cond[ref.idx];
            if (packer_.get(c.condBit))
                sv_.apply1Q(prog_.matrices[c.mat], c.q);
            break;
          }
        }
    }
}

uint64_t
ShotReplayer::replayShot(const ShotTape &tape)
{
    sv_.reset();
    packer_.clear();
    totalShots_++;
    if (tape.events.empty()) {
        // No stochastic event fired: maximally fused deterministic
        // replay (no Markov ops, one matrix per pulse train).
        fastShots_++;
        replayRange(prog_.fastOps, 0, tape, 0);
    } else {
        replayRange(prog_.ops, 0, tape, 0);
    }
    return packer_.key();
}

uint64_t
ShotReplayer::runShot(const Rng &shot_rng)
{
    drawTape(shot_rng, tape_);
    return replayShot(tape_);
}

int64_t
ShotReplayer::runBlock(const Rng &base, int64_t first_shot,
                       int64_t count, FlatAccumulator &hist,
                       const CancellationToken *token)
{
    // Every shot forks its streams from (base, absolute index) alone,
    // so stopping after any shot leaves a prefix bit-identical to the
    // same shots of an uninterrupted run; the token check costs one
    // atomic load (plus a clock read when a deadline is armed) against
    // microseconds of state-vector work per shot.
    int64_t done = 0;
    for (; done < count; done++) {
        if (token != nullptr && token->stopRequested())
            break;
        const Rng shot_rng = base.fork(
            static_cast<uint64_t>(first_shot + done) + 1);
        hist.add(runShot(shot_rng), 1.0);
    }
    return done;
}

// ------------------------------------------------------------------
// Grouped (shot-batched) dense execution.
// ------------------------------------------------------------------

namespace
{

/** True when two tapes resolved the same event pattern.  The per-shot
 *  measurement / T1 words are deliberately excluded: grouped lanes
 *  may differ in them because they are only consumed after the peel
 *  point. */
bool
sameSignature(const ShotTape &x, const ShotTape &y)
{
    if (x.events.size() != y.events.size())
        return false;
    for (size_t k = 0; k < x.events.size(); k++) {
        const ShotEvent &a = x.events[k];
        const ShotEvent &b = y.events[k];
        if (a.op != b.op || a.pulse != b.pulse || a.kind != b.kind ||
            a.a != b.a || a.b != b.b)
            return false;
    }
    return true;
}

/** One scalar draw on lane @p l of a structure-of-arrays stream
 *  block (word w of lane l at words[w * stride + l]) — the rare
 *  follow-up word after a firing threshold check. */
uint64_t
laneStep(uint64_t *words, size_t stride, int l)
{
    const auto u = static_cast<size_t>(l);
    uint64_t st[4] = {words[u], words[stride + u],
                      words[2 * stride + u], words[3 * stride + u]};
    const uint64_t r = Rng::step(st);
    words[u] = st[0];
    words[stride + u] = st[1];
    words[2 * stride + u] = st[2];
    words[3 * stride + u] = st[3];
    return r;
}

/** Rng::uniformInt on lane @p l of a stream block (Pauli error code
 *  draws after a firing gate-error check). */
uint64_t
laneUniformInt(uint64_t *words, size_t stride, int l, uint64_t n)
{
    const auto u = static_cast<size_t>(l);
    uint64_t st[4] = {words[u], words[stride + u],
                      words[2 * stride + u], words[3 * stride + u]};
    const uint64_t r = Rng::uniformIntFromState(st, n);
    words[u] = st[0];
    words[stride + u] = st[1];
    words[2 * stride + u] = st[2];
    words[3 * stride + u] = st[3];
    return r;
}

} // namespace

BatchShotReplayer::BatchShotReplayer(const ExecutionPlan &plan,
                                     const ShotProgram &prog)
    : scalar_(plan, prog), bsv_(prog.numQubits, kBatchLanes),
      tapes_(kBatchLanes),
      laneAmps_(uint64_t{1} << prog.numQubits),
      laneFactors_(kBatchLanes),
      drawBatched_(!prog.flags.ouDephasing),
      gateWords_(drawBatched_ ? size_t{4} * kBatchLanes : 0),
      qubitWords_(drawBatched_
                      ? size_t{4} * kBatchLanes *
                            static_cast<size_t>(prog.numQubits)
                      : 0),
      refMode_(prog.phaseSlots == 0)
{
    require(eligible(prog),
            "BatchShotReplayer requires an eligible program");
    if (refMode_) {
        // The event-free evolution of the general stream is
        // shot-invariant when no per-shot dynamic phases exist:
        // checkpoint it once, up to the first state-dependent op.
        refDivOp_ = static_cast<uint32_t>(prog.ops.size());
        for (uint32_t i = 0; i < prog.ops.size(); i++) {
            const OpRef::Kind k = prog.ops[i].kind;
            if (k == OpRef::Kind::Meas || k == OpRef::Kind::Reset) {
                refDivOp_ = i;
                break;
            }
        }
        const uint64_t dim = uint64_t{1} << prog.numQubits;
        const auto max_cp = static_cast<uint32_t>(std::max<size_t>(
            2, kRefBudgetBytes / (dim * sizeof(Complex))));
        refStride_ = std::max<uint32_t>(
            1, (refDivOp_ + max_cp - 1) / max_cp);
        const uint32_t num_cp = refDivOp_ / refStride_ + 1;
        refAmps_.resize(size_t{num_cp} * dim);
        scalar_.sv_.reset();
        for (uint32_t c = 0; c < num_cp; c++) {
            std::memcpy(refAmps_.data() + size_t{c} * dim,
                        scalar_.sv_.data(), dim * sizeof(Complex));
            replayPrefix(scalar_.sv_, prog.ops, c * refStride_,
                         std::min((c + 1) * refStride_, refDivOp_),
                         emptyTape_, nullptr, 0);
        }
        // The no-error prefix on the fast stream, likewise
        // tape-invariant, shared by every no-error shot of a run.
        size_t fast_cursor = 0;
        refFastDivOp_ =
            divergenceOp(prog.fastOps, emptyTape_, fast_cursor);
        refFastAmps_.resize(dim);
        scalar_.sv_.reset();
        replayPrefix(scalar_.sv_, prog.fastOps, 0, refFastDivOp_,
                     emptyTape_, nullptr, 0);
        std::memcpy(refFastAmps_.data(), scalar_.sv_.data(),
                    dim * sizeof(Complex));
    }
}

uint64_t
BatchShotReplayer::replayShotFromRef(const ShotTape &tape)
{
    // Mirrors ShotReplayer::replayShot, except the state starts at
    // the precomputed reference below the shot's first divergence —
    // the fast-stream prefix state for a no-error tape, or the
    // checkpoint below the first event — instead of |0...0>.
    const ShotProgram &prog = scalar_.prog_;
    const uint64_t dim = uint64_t{1} << prog.numQubits;
    scalar_.packer_.clear();
    scalar_.totalShots_++;
    if (tape.events.empty()) {
        scalar_.fastShots_++;
        scalar_.sv_.setAmplitudes(refFastAmps_.data(), dim);
        scalar_.replayRange(prog.fastOps, refFastDivOp_, tape, 0);
    } else {
        const uint32_t j = std::min(tape.events[0].op, refDivOp_);
        const uint32_t cp = j / refStride_;
        scalar_.sv_.setAmplitudes(refAmps_.data() + size_t{cp} * dim,
                                  dim);
        scalar_.replayRange(prog.ops, cp * refStride_, tape, 0);
    }
    return scalar_.packer_.key();
}

void
BatchShotReplayer::drawBlockTapes(const Rng &base, int64_t first_shot,
                                  int count)
{
    // Mirrors ShotReplayer::drawTape op by op: each lane's streams
    // consume the same words in the same order, so the tapes are
    // bitwise those of count scalar draw passes.  The per-shot
    // Gaussians of OU dephasing are the one draw kind with no
    // lockstep form (Box-Muller caches a second value per stream);
    // programs that sample them construct with drawBatched_ false.
    const ShotProgram &prog = scalar_.prog_;
    const NoiseFlags &flags = prog.flags;
    constexpr size_t kL = kBatchLanes;
    const auto n = static_cast<size_t>(prog.numQubits);

    uint64_t st[4];
    for (int l = 0; l < count; l++) {
        const auto ul = static_cast<size_t>(l);
        const Rng shot_rng =
            base.fork(static_cast<uint64_t>(first_shot + l) + 1);
        shot_rng.fork(0x6a7e).exportState(st);
        for (size_t w = 0; w < 4; w++)
            gateWords_[w * kL + ul] = st[w];
        for (size_t ai = 0; ai < n; ai++) {
            shot_rng.fork(0x0b5e + ai).exportState(st);
            uint64_t *qs = qubitWords_.data() + ai * 4 * kL;
            for (size_t w = 0; w < 4; w++)
                qs[w * kL + ul] = st[w];
        }
        ShotTape &tape = tapes_[ul];
        tape.phases.resize(prog.phaseSlots);
        tape.measWord.resize(size_t{2} * prog.measSlots);
        tape.events.clear();
    }

    uint64_t words[kBatchLanes];
    uint64_t *gs = gateWords_.data();
    const auto sweep = [&](uint64_t *s) {
        Rng::stepLanes(s, s + kL, s + 2 * kL, s + 3 * kL, words,
                       count);
    };
    // Draw + threshold check in one pass; the caller scans for the
    // firing lanes only when at least one fired (events are rare, so
    // the vectorizable count skips nearly every scalar scan).
    const auto sweepCount = [&](uint64_t *s, uint64_t thresh) {
        Rng::stepLanes(s, s + kL, s + 2 * kL, s + 3 * kL, words,
                       count);
        int fired = 0;
        for (int l = 0; l < count; l++)
            fired += (words[l] >> 11) < thresh ? 1 : 0;
        return fired;
    };

    for (uint32_t i = 0; i < prog.ops.size(); i++) {
        const OpRef ref = prog.ops[i];
        switch (ref.kind) {
          case OpRef::Kind::Coherent: {
            // ouKind != 0 implies flags.ouDephasing, which disables
            // the batched draw; only static-phase twirls draw here.
            const CoherentOp &c = prog.coherent[ref.idx];
            if (c.twirlThresh != kNoDraw &&
                sweepCount(qubitWords_.data() +
                               static_cast<size_t>(c.q) * 4 * kL,
                           c.twirlThresh) != 0) {
                for (int l = 0; l < count; l++) {
                    if ((words[l] >> 11) < c.twirlThresh) {
                        tapes_[static_cast<size_t>(l)]
                            .events.push_back(
                                {i, 0, 0, ShotEvent::Kind::TwirlZ, 0,
                                 0});
                    }
                }
            }
            break;
          }
          case OpRef::Kind::Markov: {
            const MarkovOp &m = prog.markov[ref.idx];
            uint64_t *qs = qubitWords_.data() +
                           static_cast<size_t>(m.q) * 4 * kL;
            if (m.t1Thresh != kNoDraw &&
                sweepCount(qs, m.t1Thresh) != 0) {
                for (int l = 0; l < count; l++) {
                    if ((words[l] >> 11) < m.t1Thresh) {
                        // Reserve the population-conditional word
                        // from this lane's stream, like the scalar
                        // draw.
                        tapes_[static_cast<size_t>(l)]
                            .events.push_back(
                                {i, 0, laneStep(qs, kL, l),
                                 ShotEvent::Kind::T1Jump, 0, 0});
                    }
                }
            }
            if (m.dephThresh != kNoDraw &&
                sweepCount(qs, m.dephThresh) != 0) {
                for (int l = 0; l < count; l++) {
                    if ((words[l] >> 11) < m.dephThresh) {
                        tapes_[static_cast<size_t>(l)]
                            .events.push_back(
                                {i, 0, 0, ShotEvent::Kind::DephZ, 0,
                                 0});
                    }
                }
            }
            break;
          }
          case OpRef::Kind::Fused1Q: {
            const Fused1QOp &f = prog.fused[ref.idx];
            for (uint32_t e = 0; e < f.errCnt; e++) {
                const PulseErrCheck &chk =
                    prog.errChecks[f.errOff + e];
                if (sweepCount(gs, chk.thresh) == 0)
                    continue;
                for (int l = 0; l < count; l++) {
                    if ((words[l] >> 11) < chk.thresh) {
                        const auto pauli = static_cast<uint8_t>(
                            laneUniformInt(gs, kL, l, 3) + 1);
                        tapes_[static_cast<size_t>(l)]
                            .events.push_back(
                                {i, chk.pulse, 0,
                                 ShotEvent::Kind::Err1Q, pauli, 0});
                    }
                }
            }
            break;
          }
          case OpRef::Kind::TwoQ: {
            const TwoQOp &t = prog.twoQ[ref.idx];
            if (t.errThresh != kNoDraw &&
                sweepCount(gs, t.errThresh) != 0) {
                for (int l = 0; l < count; l++) {
                    if ((words[l] >> 11) < t.errThresh) {
                        const auto code = static_cast<int>(
                                              laneUniformInt(gs, kL,
                                                             l, 15)) +
                                          1;
                        tapes_[static_cast<size_t>(l)]
                            .events.push_back(
                                {i, 0, 0, ShotEvent::Kind::Err2Q,
                                 static_cast<uint8_t>(code & 3),
                                 static_cast<uint8_t>(code >> 2)});
                    }
                }
            }
            break;
          }
          case OpRef::Kind::Meas: {
            const MeasOp &m = prog.meas[ref.idx];
            sweep(gs);
            for (int l = 0; l < count; l++) {
                tapes_[static_cast<size_t>(l)]
                    .measWord[size_t{2} * m.wordSlot] = words[l];
            }
            if (flags.measurementErrors) {
                sweep(gs);
                for (int l = 0; l < count; l++) {
                    tapes_[static_cast<size_t>(l)]
                        .measWord[size_t{2} * m.wordSlot + 1] =
                        words[l];
                }
            } else {
                for (int l = 0; l < count; l++) {
                    tapes_[static_cast<size_t>(l)]
                        .measWord[size_t{2} * m.wordSlot + 1] = 0;
                }
            }
            break;
          }
          case OpRef::Kind::Reset: {
            const ResetOp &r = prog.resets[ref.idx];
            sweep(gs);
            for (int l = 0; l < count; l++) {
                ShotTape &tape = tapes_[static_cast<size_t>(l)];
                tape.measWord[size_t{2} * r.wordSlot] = words[l];
                tape.measWord[size_t{2} * r.wordSlot + 1] = 0;
            }
            break;
          }
          case OpRef::Kind::Cond1Q:
            break;
        }
    }
}

bool
BatchShotReplayer::phasesUniform(const ShotTape &rep,
                                 const int *lanes,
                                 int group_size) const
{
    if (rep.phases.empty())
        return true;
    const size_t bytes = rep.phases.size() * sizeof(double);
    for (int g = 1; g < group_size; g++) {
        const ShotTape &t = tapes_[static_cast<size_t>(lanes[g])];
        if (std::memcmp(t.phases.data(), rep.phases.data(), bytes) !=
            0)
            return false;
    }
    return true;
}

uint32_t
BatchShotReplayer::divergenceOp(const std::vector<OpRef> &stream,
                                const ShotTape &rep,
                                size_t &cursor_out) const
{
    const std::vector<ShotEvent> &events = rep.events;
    size_t cursor = 0;
    for (uint32_t i = 0; i < stream.size(); i++) {
        const OpRef ref = stream[i];
        if (ref.kind == OpRef::Kind::Meas ||
            ref.kind == OpRef::Kind::Reset) {
            cursor_out = cursor;
            return i;
        }
        if (ref.kind == OpRef::Kind::Markov &&
            cursor < events.size() && events[cursor].op == i &&
            events[cursor].kind == ShotEvent::Kind::T1Jump) {
            // The draw pass emits a Markov op's T1Jump before its
            // DephZ, so a population-conditional jump is always the
            // first event at its op index.
            cursor_out = cursor;
            return i;
        }
        while (cursor < events.size() && events[cursor].op == i)
            cursor++;
    }
    cursor_out = cursor;
    return static_cast<uint32_t>(stream.size());
}

template <class SV>
void
BatchShotReplayer::replayPrefix(SV &sv,
                                const std::vector<OpRef> &stream,
                                uint32_t from, uint32_t to,
                                const ShotTape &rep,
                                const int *lanes, int group_size)
{
    constexpr bool kBatch = std::is_same_v<SV, BatchStateVector>;
    const ShotProgram &prog = scalar_.prog_;
    const NoiseFlags &flags = prog.flags;
    const std::vector<ShotEvent> &events = rep.events;
    const size_t n_events = events.size();
    size_t cursor = 0;

    for (uint32_t i = from; i < to; i++) {
        const OpRef ref = stream[i];
        switch (ref.kind) {
          case OpRef::Kind::Coherent: {
            const CoherentOp &c = prog.coherent[ref.idx];
            if (flags.twirlCoherent) {
                if (cursor < n_events && events[cursor].op == i) {
                    sv.apply1Q(pauliMatrix(3), c.q);
                    cursor++;
                }
                break;
            }
            if (c.ouKind != 0) {
                if constexpr (kBatch) {
                    // Per-lane dynamic phases.  A lane whose phase
                    // is 0.0 (the scalar path skips its sweep)
                    // receives the exact factor (1, +0); only the
                    // sign of zero amplitudes can differ, which no
                    // population sum or outcome key observes.
                    for (int g = 0; g < group_size; g++) {
                        const double phi =
                            tapes_[static_cast<size_t>(lanes[g])]
                                .phases[c.phaseSlot];
                        laneFactors_[static_cast<size_t>(g)] =
                            std::exp(kImag * phi);
                    }
                    sv.applyPhaseFactors(c.q, laneFactors_.data());
                } else {
                    // Uniform group: every member's phase equals the
                    // representative's, so the scalar replay's exact
                    // skip-on-zero semantics apply.
                    const double phi = rep.phases[c.phaseSlot];
                    if (phi != 0.0)
                        sv.applyPhase(c.q, phi);
                }
            } else if (c.staticPhi != 0.0) {
                sv.applyPhase(c.q, c.staticPhi);
            }
            break;
          }
          case OpRef::Kind::Markov: {
            const MarkovOp &m = prog.markov[ref.idx];
            while (cursor < n_events && events[cursor].op == i) {
                // Only DephZ can appear here: a T1Jump would have
                // bounded the prefix at this op.
                sv.apply1Q(pauliMatrix(3), m.q);
                cursor++;
            }
            break;
          }
          case OpRef::Kind::Fused1Q: {
            const Fused1QOp &f = prog.fused[ref.idx];
            if (cursor >= n_events || events[cursor].op != i) {
                sv.apply1Q(prog.matrices[f.fullMat], f.q);
                break;
            }
            const std::vector<Pulse> &pulses =
                scalar_.plan_.steps[f.step].pulses;
            int64_t prev = -1;
            while (cursor < n_events && events[cursor].op == i) {
                const ShotEvent &e = events[cursor++];
                if (prev < 0) {
                    sv.apply1Q(
                        prog.matrices[f.prefixOff + e.pulse], f.q);
                } else {
                    Matrix2 seg = Matrix2::identity();
                    for (auto j = static_cast<uint32_t>(prev + 1);
                         j <= e.pulse; j++)
                        seg = pulses[j].matrix * seg;
                    sv.apply1Q(seg, f.q);
                }
                sv.apply1Q(pauliMatrix(e.a), f.q);
                prev = e.pulse;
            }
            if (f.suffixOff != kNoTable) {
                sv.apply1Q(
                    prog.matrices[f.suffixOff +
                                  static_cast<uint32_t>(prev)],
                    f.q);
            } else {
                Matrix2 tail = Matrix2::identity();
                for (auto j = static_cast<uint32_t>(prev + 1);
                     j < f.pulseCnt; j++)
                    tail = pulses[j].matrix * tail;
                sv.apply1Q(tail, f.q);
            }
            break;
          }
          case OpRef::Kind::TwoQ: {
            const TwoQOp &t = prog.twoQ[ref.idx];
            switch (t.type) {
              case GateType::CX: sv.applyCX(t.q, t.q2); break;
              case GateType::CZ: sv.applyCZ(t.q, t.q2); break;
              case GateType::SWAP: sv.applySwap(t.q, t.q2); break;
              default:
                panic("grouped replay: unexpected two-qubit gate");
            }
            if (cursor < n_events && events[cursor].op == i) {
                const ShotEvent &e = events[cursor++];
                if (e.a != 0)
                    sv.apply1Q(pauliMatrix(e.a), t.q);
                if (e.b != 0)
                    sv.apply1Q(pauliMatrix(e.b), t.q2);
            }
            break;
          }
          case OpRef::Kind::Meas:
          case OpRef::Kind::Reset:
            panic("grouped dense prefix crossed a divergent op");
          case OpRef::Kind::Cond1Q:
            // No measurement has run before the divergence point, so
            // the condition bit is 0 in every lane: uniform no-op.
            break;
        }
    }
}

void
BatchShotReplayer::runSubBlock(const Rng &base, int64_t first_shot,
                               int count, FlatAccumulator &hist)
{
    const ShotProgram &prog = scalar_.prog_;
    if (drawBatched_) {
        drawBlockTapes(base, first_shot, count);
    } else {
        for (int s = 0; s < count; s++) {
            const Rng shot_rng =
                base.fork(static_cast<uint64_t>(first_shot + s) + 1);
            scalar_.drawTape(shot_rng, tapes_[static_cast<size_t>(s)]);
        }
    }
    for (int s = 0; s < count; s++) {
        if (tapes_[static_cast<size_t>(s)].events.empty())
            stats_.noErrorShots++;
    }
    stats_.shots += count;
    stats_.blocks++;

    // Group by event signature with an order-preserving scan against
    // each group's representative (<= 64 members per block keeps the
    // quadratic comparison trivial; tapes of one group share every
    // event, so comparing against the representative suffices).
    int groupOf[kBatchLanes];
    int repOf[kBatchLanes];
    int num_groups = 0;
    for (int s = 0; s < count; s++) {
        int g = -1;
        for (int k = 0; k < num_groups; k++) {
            if (sameSignature(tapes_[static_cast<size_t>(s)],
                              tapes_[static_cast<size_t>(repOf[k])])) {
                g = k;
                break;
            }
        }
        if (g < 0) {
            g = num_groups++;
            repOf[g] = s;
        }
        groupOf[s] = g;
    }
    stats_.groups += num_groups;

    const uint64_t dim = uint64_t{1} << prog.numQubits;
    int lanes[kBatchLanes];
    for (int k = 0; k < num_groups; k++) {
        int group_size = 0;
        for (int s = 0; s < count; s++) {
            if (groupOf[s] == k)
                lanes[group_size++] = s;
        }
        const ShotTape &rep = tapes_[static_cast<size_t>(repOf[k])];
        const std::vector<OpRef> &stream =
            rep.events.empty() ? prog.fastOps : prog.ops;
        size_t cursor_at_d = 0;
        const uint32_t d =
            group_size >= 2
                ? divergenceOp(stream, rep, cursor_at_d)
                : 0;
        if (group_size < 2 || d == 0) {
            // Nothing to share across lanes: per-shot replay, from
            // the precomputed reference below the shot's first
            // divergence when the event-free prefix is
            // shot-invariant.
            for (int g = 0; g < group_size; g++) {
                const ShotTape &tape =
                    tapes_[static_cast<size_t>(lanes[g])];
                if (refMode_)
                    hist.add(replayShotFromRef(tape), 1.0);
                else
                    hist.add(scalar_.replayShot(tape), 1.0);
            }
            continue;
        }

        stats_.batchedShots += group_size;
        if (phasesUniform(rep, lanes, group_size)) {
            // Every member's prefix is the identical operator
            // sequence (equal events AND equal dynamic phases): run
            // it once on the scalar state, snapshot, and give each
            // member the shared state for its divergent tail.  An
            // event-carrying group additionally starts from the
            // reference checkpoint below its first event (refMode_).
            if (refMode_ && rep.events.empty()) {
                // No-error group: its fast-stream prefix state is
                // block-invariant, and d here always equals
                // refFastDivOp_ (both are the first Meas/Reset of
                // fastOps), so the precomputed reference IS the
                // shared snapshot.
                std::memcpy(laneAmps_.data(), refFastAmps_.data(),
                            dim * sizeof(Complex));
            } else {
                if (refMode_) {
                    const uint32_t j =
                        std::min(rep.events[0].op, refDivOp_);
                    const uint32_t cp = j / refStride_;
                    scalar_.sv_.setAmplitudes(
                        refAmps_.data() + size_t{cp} * dim, dim);
                    replayPrefix(scalar_.sv_, stream,
                                 cp * refStride_, d, rep, lanes, 1);
                } else {
                    scalar_.sv_.reset();
                    replayPrefix(scalar_.sv_, stream, 0, d, rep,
                                 lanes, 1);
                }
                std::memcpy(laneAmps_.data(), scalar_.sv_.data(),
                            dim * sizeof(Complex));
            }
            for (int g = 0; g < group_size; g++) {
                const ShotTape &tape =
                    tapes_[static_cast<size_t>(lanes[g])];
                scalar_.sv_.setAmplitudes(laneAmps_.data(), dim);
                scalar_.packer_.clear();
                scalar_.totalShots_++;
                if (tape.events.empty())
                    scalar_.fastShots_++;
                scalar_.replayRange(stream, d, tape, cursor_at_d);
                hist.add(scalar_.packer_.key(), 1.0);
            }
            continue;
        }

        bsv_.reset(group_size);
        replayPrefix(bsv_, stream, 0, d, rep, lanes, group_size);
        for (int g = 0; g < group_size; g++) {
            const ShotTape &tape =
                tapes_[static_cast<size_t>(lanes[g])];
            bsv_.extractLane(g, laneAmps_.data());
            scalar_.sv_.setAmplitudes(laneAmps_.data(), dim);
            // No measurement ran before the peel point, so the
            // packer is clear at the divergence op in every lane.
            scalar_.packer_.clear();
            scalar_.totalShots_++;
            if (tape.events.empty())
                scalar_.fastShots_++;
            scalar_.replayRange(stream, d, tape, cursor_at_d);
            hist.add(scalar_.packer_.key(), 1.0);
        }
    }
}

int64_t
BatchShotReplayer::runBlock(const Rng &base, int64_t first_shot,
                            int64_t count, FlatAccumulator &hist,
                            const CancellationToken *token)
{
    // Outcomes never depend on the sub-block split (every shot's
    // tape is drawn from (base, absolute index) alone), so draw
    // blocks are formed from the range start; the token is polled
    // once per block, truncating to an exact block-prefix.
    int64_t done = 0;
    while (done < count) {
        if (token != nullptr && token->stopRequested())
            break;
        const int n = static_cast<int>(
            std::min<int64_t>(kBatchLanes, count - done));
        runSubBlock(base, first_shot + done, n, hist);
        done += n;
    }
    return done;
}

} // namespace adapt
