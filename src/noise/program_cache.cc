#include "noise/program_cache.hh"

#include <cstdlib>
#include <cstring>

#include "common/env.hh"
#include "noise/compiled.hh"

namespace adapt
{

namespace
{

/** One lane of the fingerprint: a splitmix64-style stream folding
 *  64-bit words.  Two lanes with independent seeds and odd
 *  multipliers give 128 effectively independent bits. */
struct FoldLane
{
    uint64_t state;
    uint64_t mult;

    void fold(uint64_t word)
    {
        state += word + 0x9e3779b97f4a7c15ull;
        uint64_t z = state;
        z = (z ^ (z >> 30)) * mult;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        state = z ^ (z >> 31);
    }
};

struct Folder
{
    FoldLane a{0x243f6a8885a308d3ull, 0xbf58476d1ce4e5b9ull};
    FoldLane b{0x13198a2e03707344ull, 0xff51afd7ed558ccdull};

    void word(uint64_t w)
    {
        a.fold(w);
        b.fold(w ^ 0xa5a5a5a5a5a5a5a5ull);
    }

    void real(double d)
    {
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d), "double is 64-bit");
        std::memcpy(&bits, &d, sizeof(bits));
        word(bits);
    }

    void text(const char *s)
    {
        if (s == nullptr) {
            word(0xdeadull);
            return;
        }
        word(1);
        for (; *s != '\0'; s++)
            word(static_cast<uint64_t>(
                static_cast<unsigned char>(*s)));
    }
};

} // namespace

ProgramFingerprint
skeletonFingerprint(const ScheduledCircuit &sched,
                    const NoiseFlags &flags, BackendKind requested)
{
    Folder f;

    f.word(static_cast<uint64_t>(sched.numQubits()));
    f.word(static_cast<uint64_t>(sched.numClbits()));
    f.word(sched.ops().size());
    for (const TimedOp &op : sched.ops()) {
        const Gate &gate = op.gate;
        f.word(static_cast<uint64_t>(gate.type));
        f.word(gate.qubits.size());
        for (QubitId q : gate.qubits)
            f.word(static_cast<uint64_t>(q));
        f.word(gate.params.size());
        for (double p : gate.params)
            f.real(p);
        f.word(static_cast<uint64_t>(
            static_cast<int64_t>(gate.clbit)));
        f.word(static_cast<uint64_t>(
            static_cast<int64_t>(gate.condBit)));
        f.real(op.start);
        f.real(op.end);
        f.word(static_cast<uint64_t>(
            static_cast<int64_t>(op.linkIndex)));
        f.word(op.ddPulse ? 1 : 0);
    }

    f.word((flags.gateErrors ? 1u : 0u) |
           (flags.measurementErrors ? 2u : 0u) |
           (flags.t1Damping ? 4u : 0u) |
           (flags.whiteDephasing ? 8u : 0u) |
           (flags.ouDephasing ? 16u : 0u) |
           (flags.crosstalk ? 32u : 0u) |
           (flags.twirlCoherent ? 64u : 0u));
    f.word(static_cast<uint64_t>(requested));

    // Frame-engine knobs the structure phase reads: folded as live
    // raw strings so env toggles between prepares re-key the cache.
    f.text(envText("ADAPT_FRAME_BATCH"));
    f.text(envText("ADAPT_FRAME_BRANCH_DEPTH"));

    return {f.a.state, f.b.state};
}

ProgramCache::ProgramCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
}

std::shared_ptr<const ProgramSkeleton>
ProgramCache::findOrBuild(
    const ProgramFingerprint &fp,
    const std::function<ProgramSkeleton()> &build)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(fp);
        if (it != entries_.end()) {
            hits_++;
            it->second.lastUse = ++tick_;
            return it->second.skeleton;
        }
        misses_++;
    }

    // Compile outside the lock: skeleton builds can run milliseconds
    // (reference-tableau walks), and a racing duplicate build of the
    // same fingerprint is deterministic, hence benign.
    auto built = std::make_shared<const ProgramSkeleton>(build());

    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(fp);
    if (it != entries_.end()) {
        // Lost the race: keep the incumbent so concurrent binders of
        // one fingerprint share a single skeleton.
        it->second.lastUse = ++tick_;
        return it->second.skeleton;
    }
    while (entries_.size() >= capacity_) {
        auto victim = entries_.begin();
        for (auto cand = entries_.begin(); cand != entries_.end();
             ++cand) {
            if (cand->second.lastUse < victim->second.lastUse)
                victim = cand;
        }
        entries_.erase(victim);
        evictions_++;
    }
    entries_.emplace(fp, Entry{built, ++tick_});
    return built;
}

ProgramCache::Stats
ProgramCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return {hits_, misses_, evictions_, entries_.size()};
}

void
ProgramCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
}

ProgramCache *
ProgramCache::processShared()
{
    // Env is sampled once: the shared cache's existence and size are
    // process lifetime decisions (tests that need isolation install
    // their own instance via NoisyMachine::setProgramCache).
    static ProgramCache *shared = []() -> ProgramCache * {
        if (!envFlag("ADAPT_PROGRAM_CACHE", true))
            return nullptr;
        const auto cap = static_cast<size_t>(
            envInt("ADAPT_PROGRAM_CACHE_CAP", 64, 1, 1 << 20));
        return new ProgramCache(cap);
    }();
    return shared;
}

} // namespace adapt
