/**
 * @file
 * Noise-channel configuration and the Ornstein-Uhlenbeck dephasing
 * process used by the trajectory engine.
 *
 * The channel inventory (see DESIGN.md Sec. 1 for the mapping to real
 * hardware):
 *  - depolarizing gate errors after 1q pulses and CNOTs,
 *  - asymmetric measurement bit flips,
 *  - T1 amplitude damping over idle segments,
 *  - Markovian (white) dephasing over idle segments (not refocusable),
 *  - slow OU detuning -> coherent RZ over idle segments (refocusable
 *    by DD; correlation time makes pulse spacing matter, Fig. 16),
 *  - coherent crosstalk phase on idle spectators of active CNOTs
 *    (the dominant idling error, Sec. 3.2).
 */

#ifndef ADAPT_NOISE_NOISE_MODEL_HH
#define ADAPT_NOISE_NOISE_MODEL_HH

#include <algorithm>
#include <cmath>

#include "common/rng.hh"
#include "common/types.hh"

namespace adapt
{

/**
 * @name Shared noise-channel formulas
 *
 * Single definitions for every closed-form probability / transition
 * constant of the trajectory engine.  Three call sites must agree bit
 * for bit — OuProcess::at, the interpreted engine (machine.cc), and
 * the shot-program compiler (compiled.cc, which evaluates them once
 * per job instead of once per shot) — so the expressions live here:
 * divergence between the paths becomes structurally impossible
 * instead of resting on textual copies staying identical.
 * @{
 */

/** OU mean-reversion factor exp(-dt / tau) over a dt_us interval. */
inline double
ouDecayFactor(double dt_us, double tau_us)
{
    return std::exp(-dt_us / tau_us);
}

/** OU innovation standard deviation for a given decay factor. */
inline double
ouInnovationSd(double sigma, double decay)
{
    return sigma * std::sqrt(std::max(0.0, 1.0 - decay * decay));
}

/** Pauli-twirl Z probability sin^2(phi / 2) of a coherent phase. */
inline double
twirlZProbability(double phase)
{
    const double half = 0.5 * phase;
    return std::sin(half) * std::sin(half);
}

/** Thinned T1 jump-candidate probability 1 - exp(-dt / T1). */
inline double
t1JumpProbability(double dt_us, double t1_us)
{
    return 1.0 - std::exp(-dt_us / t1_us);
}

/** White-dephasing Z-flip probability over a dt_us interval. */
inline double
whiteDephasingFlipProbability(double dt_us, double t2_white_us)
{
    return 0.5 * (1.0 - std::exp(-dt_us / t2_white_us));
}

/** @} */

/**
 * Per-channel enable bits, for the noise-decomposition ablation.
 *
 * The channels split into two families:
 *  - Pauli-expressible: depolarizing gate errors, measurement bit
 *    flips, thinned T1 jumps, and white dephasing are stochastic
 *    Pauli/collapse events, exactly representable on both the dense
 *    and the stabilizer backend.
 *  - Coherent: OU detuning and crosstalk accrue continuous Z phases
 *    that interfere (DD refocusing lives here); they are exact only
 *    on the dense backend.  twirlCoherent opts into the Pauli-twirl
 *    approximation (Z with probability sin^2(phi/2) per idle gap) so
 *    wide Clifford workloads can keep them on the stabilizer fast
 *    path — at the cost of losing the refocusing physics.
 */
struct NoiseFlags
{
    bool gateErrors = true;
    bool measurementErrors = true;
    bool t1Damping = true;
    bool whiteDephasing = true;
    bool ouDephasing = true;
    bool crosstalk = true;

    /** Approximate the coherent channels by their Pauli twirl (see
     *  above); off by default — it changes the physics.  The twirl
     *  is applied by the trajectory engine itself, so dense and
     *  stabilizer backends sample the same (approximate) law. */
    bool twirlCoherent = false;

    /** True if any coherent (interference-carrying) channel is on. */
    bool anyCoherent() const { return ouDephasing || crosstalk; }

    /** True when every enabled channel can be simulated as stochastic
     *  Pauli/collapse events — the precondition for the stabilizer
     *  fast path (BackendKind::Auto dispatch). */
    bool
    pauliExpressible() const
    {
        return !anyCoherent() || twirlCoherent;
    }

    /** Everything off: the machine becomes an ideal simulator. */
    static NoiseFlags
    none()
    {
        return {false, false, false, false, false, false};
    }

    /** Everything on (default experimental condition). */
    static NoiseFlags all() { return {}; }

    /** Only the Pauli-expressible channels (coherent ones off): the
     *  strongest noise model the stabilizer backend runs exactly. */
    static NoiseFlags
    pauliOnly()
    {
        return {true, true, true, true, false, false};
    }
};

/**
 * Ornstein-Uhlenbeck detuning process: stationary Gaussian noise with
 * standard deviation sigma (rad/us) and correlation time tau (us),
 * sampled exactly at arbitrary increasing times.
 */
class OuProcess
{
  public:
    /**
     * @param sigma_rad_per_us Stationary standard deviation.
     * @param tau_us Correlation time.
     * @param rng Source of randomness (stationary initial draw).
     */
    OuProcess(double sigma_rad_per_us, double tau_us, Rng &rng);

    /**
     * Detuning at time @p t_us (microseconds).  Times must be
     * non-decreasing across calls.
     */
    double at(double t_us, Rng &rng);

  private:
    double sigma_;
    double tau_;
    double lastTimeUs_;
    double lastValue_;
};

} // namespace adapt

#endif // ADAPT_NOISE_NOISE_MODEL_HH
