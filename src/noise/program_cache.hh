/**
 * @file
 * Process-wide cache of compiled program skeletons.
 *
 * Splitting compilation into a structure phase (ProgramSkeleton) and
 * a bind phase (calibration constants) makes the expensive half —
 * plan lowering, splice-table matrix products, the frame engine's
 * reference-tableau walk — a pure function of (scheduled circuit,
 * noise flags, backend request, frame-engine knobs).  Drift sweeps,
 * adaptSearch mask neighbourhoods, and repeated JobServer submissions
 * re-run the same structures against fresh calibration snapshots, so
 * the skeletons are cached under a fingerprint of those inputs and
 * only the cheap bind phase runs per (device, cycle).
 *
 * Knobs (strict parsers, warn-once on malformed values):
 *   ADAPT_PROGRAM_CACHE      on/off, default on — "off" makes
 *                            ProgramCache::processShared() return
 *                            nullptr so every prepare compiles cold.
 *   ADAPT_PROGRAM_CACHE_CAP  LRU capacity in skeletons, default 64,
 *                            clamped to [1, 1048576].
 */

#ifndef ADAPT_NOISE_PROGRAM_CACHE_HH
#define ADAPT_NOISE_PROGRAM_CACHE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "noise/noise_model.hh"
#include "sim/backend.hh"
#include "transpile/schedule.hh"

namespace adapt
{

struct ProgramSkeleton;

/** 128-bit structural fingerprint (collision odds are negligible at
 *  cache scale; the two lanes are mixed with independent streams). */
struct ProgramFingerprint
{
    uint64_t hi = 0;
    uint64_t lo = 0;

    bool operator<(const ProgramFingerprint &o) const
    {
        return hi != o.hi ? hi < o.hi : lo < o.lo;
    }
    bool operator==(const ProgramFingerprint &o) const
    {
        return hi == o.hi && lo == o.lo;
    }
};

/**
 * Fingerprint of everything the structure phase reads: the scheduled
 * op stream (types, operands, parameter/time bit patterns, link
 * indices), the noise-flag set, the requested backend, and the
 * frame-engine environment knobs (ADAPT_FRAME_BATCH,
 * ADAPT_FRAME_BRANCH_DEPTH — folded as raw strings, read live per
 * call, so tests that toggle them between prepares never see a stale
 * skeleton).
 */
ProgramFingerprint skeletonFingerprint(const ScheduledCircuit &sched,
                                       const NoiseFlags &flags,
                                       BackendKind requested);

/**
 * Thread-safe LRU map from fingerprint to immutable skeleton.
 *
 * Skeletons are shared_ptr<const>: a cached entry can be evicted
 * while a binder still holds it.  Misses compile outside the lock —
 * a racing double-compile of the same fingerprint is benign (the
 * first insert wins, the loser binds from its own copy).
 */
class ProgramCache
{
  public:
    explicit ProgramCache(size_t capacity);

    /** Cached skeleton for @p fp, or build-and-insert via @p build. */
    std::shared_ptr<const ProgramSkeleton> findOrBuild(
        const ProgramFingerprint &fp,
        const std::function<ProgramSkeleton()> &build);

    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0;
        size_t entries = 0;
    };
    Stats stats() const;

    size_t capacity() const { return capacity_; }

    /** Drop every entry (stats counters are kept). */
    void clear();

    /**
     * The process-wide instance every NoisyMachine picks up by
     * default, sized by ADAPT_PROGRAM_CACHE_CAP; nullptr when
     * ADAPT_PROGRAM_CACHE=off.  Env is read once, at first use.
     */
    static ProgramCache *processShared();

  private:
    struct Entry
    {
        std::shared_ptr<const ProgramSkeleton> skeleton;
        uint64_t lastUse = 0;
    };

    const size_t capacity_;
    mutable std::mutex mu_;
    std::map<ProgramFingerprint, Entry> entries_;
    uint64_t tick_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
};

} // namespace adapt

#endif // ADAPT_NOISE_PROGRAM_CACHE_HH
