/**
 * @file
 * Compile-once shot programs for the dense trajectory engine.
 *
 * NoisyMachine's historical inner loop re-interpreted the execution
 * plan for every shot: it re-composed the same Matrix2 pulse
 * products, re-evaluated the same exp()-heavy idle-noise constants,
 * and re-branched on step kinds — all work that is identical across
 * the thousands of shots of a job.  This unit hoists everything
 * shot-invariant into a one-time lowering:
 *
 *   ScheduledCircuit --buildPlan--> ExecutionPlan
 *                    --compileShotProgram--> ShotProgram
 *
 * A ShotProgram is a flat opcode stream with
 *  - pre-fused 1Q pulse products per Fused1Q step, plus prefix /
 *    suffix product tables so a rare gate error firing at pulse i
 *    splices prefix[i] · Pauli · suffix[i] without re-deriving any
 *    matrix (multi-error trains fall back to an identical sequential
 *    fold over the stored pulse matrices),
 *  - per-step idle / Markovian noise constants (OU decay and
 *    innovation sigma, crosstalk phase terms, T1 / dephasing flip
 *    probabilities) precomputed once, with probabilities stored as
 *    fixed-point Bernoulli thresholds compared directly against raw
 *    RNG words, and
 *  - a no-error fast replay stream: each shot first resolves all of
 *    its stochastic outcomes in a cheap draw pass (no state-vector
 *    work); when nothing fires — the common case at realistic error
 *    rates — the shot replays a maximally fused deterministic stream
 *    that skips every noise branch.
 *
 * Determinism contract: a compiled shot consumes exactly the same RNG
 * words from exactly the same forked streams as the interpreted
 * reference path in machine.cc, and mutates the StateVector with
 * bit-identical operands in the same order.  Output distributions are
 * therefore bit-identical to the interpreter for any seed, any thread
 * count, and batch-vs-serial (tests/test_compiled.cc locks this).
 * The library builds with -ffp-contract=off so the duplicated scalar
 * expressions here and in machine.cc cannot diverge through FMA
 * contraction on native builds.
 */

#ifndef ADAPT_NOISE_COMPILED_HH
#define ADAPT_NOISE_COMPILED_HH

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "circuit/gate.hh"
#include "common/cancellation.hh"
#include "common/flat_accumulator.hh"
#include "common/matrix2.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "device/calibration.hh"
#include "noise/noise_model.hh"
#include "sim/backend.hh"
#include "sim/frame_batch.hh"
#include "sim/statevector.hh"
#include "sim/statevector_batch.hh"
#include "transpile/schedule.hh"

namespace adapt
{

// ------------------------------------------------------------------
// Shot-invariant execution plan (shared by the interpreted reference
// path in machine.cc and the compiler below).
// ------------------------------------------------------------------

constexpr double kNsToUs = 1e-3;

/** A crosstalk source seen by one spectator qubit. */
struct CrosstalkSource
{
    TimeNs start;
    TimeNs end;
    double radPerUs;
};

/** Overlap of [a0, a1) and [b0, b1) in microseconds. */
inline double
overlapUs(TimeNs a0, TimeNs a1, TimeNs b0, TimeNs b1)
{
    return std::max(0.0, std::min(a1, b1) - std::max(a0, b0)) * kNsToUs;
}

/** One pulse of a fused single-qubit train. */
struct Pulse
{
    Gate gate; //!< dense-relabelled operands (tableau replay)
    Matrix2 matrix;
    double errorProb;

    /** True for physical pulses (X/Y/SX/SXdg) that carry the
     *  calibration's 1Q gate-error channel; lets the bind phase
     *  re-stamp errorProb without re-classifying the gate. */
    bool physical = false;
};

/** One step of the pre-compiled execution plan. */
struct PlanStep
{
    enum class Kind { Fused1Q, TwoQubit, Meas, Reset, Cond1Q } kind;
    int q = -1;
    int q2 = -1;
    TimeNs start = 0.0;
    TimeNs end = 0.0;
    std::vector<Pulse> pulses;       // Fused1Q, Cond1Q (one pulse)
    GateType twoQubitType = GateType::CX;
    double cxError = 0.0;            // TwoQubit
    int linkIndex = -1;              // TwoQubit (cxError's source)
    int clbit = 0;                   // Meas
    double err01 = 0.0, err10 = 0.0; // Meas

    /** Classical bit the gate is conditioned on (Cond1Q only).
     *  Conditional pulses carry no gate-error channel — the feedback
     *  pulse fires in a data-dependent subset of shots, and keeping
     *  it noiseless keeps every engine's RNG consumption a fixed
     *  property of the program. */
    int condBit = -1;
};

/**
 * The shot-invariant execution plan: the schedule lowered onto dense
 * qubit indices, with calibration data baked into every step and
 * crosstalk sources precomputed per spectator.  Built once per job
 * and shared read-only by all shot workers.
 */
struct ExecutionPlan
{
    std::vector<QubitId> active; //!< dense index -> physical qubit
    std::vector<std::vector<CrosstalkSource>> xtalk; //!< per dense q
    std::vector<PlanStep> steps;

    /** Every gate Clifford: eligible for the stabilizer fast path. */
    bool clifford = true;

    /** Highest classical bit written or read; > 63 switches the
     *  outcome keys to OutcomePacker fingerprints (wide stabilizer
     *  registers). */
    int maxClbit = 0;

    /** Some conditional gate's action is not a Pauli (e.g. a
     *  classically-controlled S): the lanes of a frame block would
     *  need per-lane non-Pauli references, so the job is ineligible
     *  for the batch frame engine (per-shot tableau replay handles it
     *  exactly). */
    bool condNonPauli = false;
};

/** Lower a scheduled executable onto the plan (once per job). */
ExecutionPlan buildPlan(const ScheduledCircuit &sched,
                        const Calibration &cal,
                        const NoiseFlags &flags);

// ------------------------------------------------------------------
// Fixed-point Bernoulli thresholds.
// ------------------------------------------------------------------

/** Sentinel threshold: this draw is disabled — consume nothing. */
constexpr uint64_t kNoDraw = UINT64_MAX;

/**
 * Fixed-point threshold T(p) such that for any raw RNG word w,
 *   (w >> 11) < T(p)  ⟺  Rng::bernoulli(p) fed the same word fires.
 *
 * Exactness: Rng::uniform() is (w >> 11) * 2^-53 with u = w >> 11 an
 * integer in [0, 2^53); both u and p * 2^53 = ldexp(p, 53) are exact
 * doubles, so u * 2^-53 < p ⟺ u < ceil(ldexp(p, 53)) as integers
 * (strict compare when ldexp(p, 53) is itself an integer).
 */
inline uint64_t
bernoulliThreshold(double p)
{
    if (p <= 0.0)
        return 0;
    if (p >= 1.0)
        return uint64_t{1} << 53;
    const double scaled = std::ldexp(p, 53); // exact: p has 53 bits
    const double c = std::ceil(scaled);
    if (c == scaled)
        return static_cast<uint64_t>(scaled);
    return static_cast<uint64_t>(c);
}

// ------------------------------------------------------------------
// Compiled opcode stream.
// ------------------------------------------------------------------

/** Sentinel for "no precomputed table". */
constexpr uint32_t kNoTable = UINT32_MAX;

/**
 * Coherent idle noise for one qubit over one gap.  Three flavours:
 *  - dynamic (OU enabled): the draw pass advances the qubit's OU
 *    value with the precomputed (decay, innovation sigma) pair and
 *    folds the precomputed crosstalk terms onto it; the resulting
 *    phase lands in the tape slot the replay reads.
 *  - static phase (OU off, non-zero crosstalk fold): phi is fully
 *    precomputed; no per-shot randomness at all.
 *  - static twirl (OU off, twirlCoherent): the Z probability
 *    sin^2(phi/2) is a fixed-point threshold.
 */
struct CoherentOp
{
    int q = -1;

    /** 0: OU disabled; 1: OU sampled at an unchanged time (reuse the
     *  last value, no draw); 2: OU advances (one normal() draw). */
    uint8_t ouKind = 0;

    double ouDecay = 1.0;  //!< exp(-dt / tau) at this gap (ouKind 2)
    double ouSd = 0.0;     //!< sigma * sqrt(1 - decay^2) (ouKind 2)
    double gapDtUs = 0.0;  //!< (t1 - t0) * kNsToUs
    double staticPhi = 0.0;

    uint32_t termsOff = 0, termsCnt = 0; //!< into xtalkTerms
    uint32_t phaseSlot = 0;              //!< tape slot (dynamic)
    uint64_t twirlThresh = kNoDraw;      //!< static twirl only
};

/** Markovian (T1 + white-dephasing) noise for one qubit over one
 *  wall-clock interval; thresholds are kNoDraw for disabled flags. */
struct MarkovOp
{
    int q = -1;
    uint64_t t1Thresh = kNoDraw;
    uint64_t dephThresh = kNoDraw;
};

/** One gate-error Bernoulli inside a fused 1Q train. */
struct PulseErrCheck
{
    uint32_t pulse = 0; //!< pulse index within the step
    uint64_t thresh = 0;
};

/** A fused single-qubit pulse train. */
struct Fused1QOp
{
    int q = -1;
    uint32_t step = 0;     //!< plan step (pulse matrices for splices)
    uint32_t pulseCnt = 0;
    uint32_t fullMat = 0;  //!< matrices[] index of the full product
    uint32_t prefixOff = 0;        //!< prefix[i] = fold of pulses 0..i
    uint32_t suffixOff = kNoTable; //!< suffix[i] = fold of i+1..end
    uint32_t errOff = 0, errCnt = 0; //!< into errChecks
};

/** A two-qubit gate with its depolarizing error threshold. */
struct TwoQOp
{
    int q = -1, q2 = -1;
    GateType type = GateType::CX;
    uint64_t errThresh = kNoDraw;
};

/** A projective measurement with readout-flip thresholds. */
struct MeasOp
{
    int q = -1;
    int clbit = 0;
    uint32_t wordSlot = 0; //!< tape slot holding the raw RNG words
    uint64_t thresh01 = 0, thresh10 = 0;
};

/** An active reset: a projective collapse (one reserved gateRng word,
 *  like a measurement) followed by X when the outcome was 1.  The
 *  outcome is consumed internally — no clbit, no readout error. */
struct ResetOp
{
    int q = -1;
    uint32_t wordSlot = 0; //!< tape slot (first word; second unused)
};

/** A classically-controlled 1Q pulse: applied in replay only (no
 *  draws — conditional pulses carry no gate-error channel) when the
 *  last recorded value of condBit is 1. */
struct Cond1QOp
{
    int q = -1;
    int condBit = 0;
    uint32_t mat = 0; //!< matrices[] index of the pulse matrix
};

/** One entry of an opcode stream: a kind plus an index into the
 *  matching payload array. */
struct OpRef
{
    enum class Kind : uint8_t
    {
        Coherent,
        Markov,
        Fused1Q,
        TwoQ,
        Meas,
        Reset,
        Cond1Q,
    };
    Kind kind;
    uint32_t idx;
};

/**
 * A job lowered into flat opcode streams.  `ops` is the complete
 * stream the draw pass walks (and the replay falls back to when any
 * stochastic event fired); `fastOps` is the no-error replay stream
 * with every Markov / twirl op removed and every fused train resolved
 * to its single precomputed product.
 */
struct ShotProgram
{
    int numQubits = 0;
    int numClbits = 1;
    NoiseFlags flags;

    std::vector<double> ouSigma; //!< per dense qubit (initial draw)

    std::vector<OpRef> ops;
    std::vector<OpRef> fastOps;

    std::vector<CoherentOp> coherent;
    std::vector<MarkovOp> markov;
    std::vector<Fused1QOp> fused;
    std::vector<TwoQOp> twoQ;
    std::vector<MeasOp> meas;
    std::vector<ResetOp> resets;
    std::vector<Cond1QOp> cond;

    std::vector<PulseErrCheck> errChecks;
    std::vector<double> xtalkTerms;
    std::vector<Matrix2> matrices; //!< fused products + splice tables

    uint32_t phaseSlots = 0;
    uint32_t measSlots = 0;
};

/**
 * Lower @p plan into a ShotProgram (dense backend only; once per
 * job).  All probabilities become fixed-point thresholds and all
 * shot-invariant floating-point expressions are evaluated here with
 * the exact formulas of the interpreted path.
 */
ShotProgram compileShotProgram(const ExecutionPlan &plan,
                               const Calibration &cal,
                               const NoiseFlags &flags);

/**
 * Lower @p plan into a FrameProgram — the stabilizer-path analogue of
 * compileShotProgram, for the bit-packed batch Pauli-frame engine
 * (sim/frame_batch.hh).  Runs the noiseless reference tableau
 * simulation once, baking into the op stream:
 *  - every measurement's reference outcome, plus the branch-flip
 *    Pauli for random-outcome measurements,
 *  - each T1 checkpoint's reference population (deterministic
 *    checkpoints take the exact jump path, random ones the documented
 *    X-injection approximation),
 *  - every pulse train fused into one GL(2, F2) frame transform, with
 *    mid-train gate errors conjugated through the train suffix,
 *  - every noise probability resolved into a FrameBernoulli mask
 *    mode, with the exact closed forms of the interpreted path.
 *
 * Noise-op emission mirrors the interpreted runShot order (coherent
 * catch-up, then Markovian, then the step), so the two engines sample
 * the same law.
 *
 * @pre plan.clifford and flags Pauli-expressible without per-shot OU
 *      (flags.ouDephasing off); the dispatcher keeps OU-twirl jobs on
 *      the per-shot backend.
 */
FrameProgram compileFrameProgram(const ExecutionPlan &plan,
                                 const Calibration &cal,
                                 const NoiseFlags &flags);

// ------------------------------------------------------------------
// Structure / constants split.
//
// Compilation is factored into a device-independent *structure* phase
// and a cheap device-dependent *bind* phase:
//
//   ScheduledCircuit --buildPlanSkeleton--> ProgramSkeleton
//   (skeleton, Calibration) --bindPlan/bindShotProgram/
//                             bindFrameProgram--> executable program
//
// The skeleton captures everything that does not depend on the
// calibration snapshot: the lowered step stream, link-activity
// windows, the dense splice tables (every Matrix2 product), and the
// frame path's entire reference-tableau walk (measurement outcomes,
// branch-flip supports, T1 classifications, fused-train frame
// transforms, branch-hop tableau snapshots).  Binding stamps the
// remaining constants — T1 / dephasing / readout / gate-error rates,
// OU terms, crosstalk coefficients, fixed-point Bernoulli thresholds
// — and is orders of magnitude cheaper than a cold compile.  Drift
// sweeps, adaptSearch mask neighbourhoods, and repeated JobServer
// submissions share skeletons through the ProgramCache
// (noise/program_cache.hh) and only re-bind.
//
// Determinism: a bound program is field-for-field identical to a
// cold compile of the same (schedule, calibration, flags) — the
// legacy entry points buildPlan / compileShotProgram /
// compileFrameProgram are now thin build+bind compositions, so cold
// and cached paths run literally the same code.
// ------------------------------------------------------------------

/** Per-link CX activity windows recorded by the structure phase so
 *  the bind phase can expand crosstalk sources without re-walking
 *  the schedule.  Only links with activity are recorded. */
struct LinkWindows
{
    int link = -1;
    std::vector<std::pair<TimeNs, TimeNs>> windows;
};

/**
 * Dense-path splice tables: every Matrix2 product compileShotProgram
 * historically built per job (fused-train prefix products, suffix
 * tables, conditional pulse matrices), laid out in the exact order
 * the ShotProgram matrix pool expects so binding is a single vector
 * copy.
 */
struct ShotTables
{
    struct StepRef
    {
        /** Cond1Q: the pulse matrix; Fused1Q: the prefix-table
         *  offset (fullMat = mat + pulseCnt - 1). */
        uint32_t mat = kNoTable;

        /** Fused1Q suffix table, when the train is short enough. */
        uint32_t suffixOff = kNoTable;
    };

    std::vector<Matrix2> matrices;
    std::vector<StepRef> perStep; //!< parallel to ExecutionPlan::steps
};

/**
 * Frame-path structure trace: the complete record of the noiseless
 * reference-tableau walk compileFrameProgram performs.  Every
 * reference query (measurement randomness, flip supports, T1
 * population classes) and every fused-train Clifford resolution is
 * device-independent, so it is recorded once here and consumed in
 * plan-step order by bindFrameProgram — which then only evaluates
 * calibration-dependent probabilities.
 */
struct FrameSkeleton
{
    /** ADAPT_FRAME_BRANCH_DEPTH at structure time (part of the
     *  program-cache key). */
    int branchDepth = 0;

    /** One per Fused1Q step: the train's frame transform, its
     *  named-gate realization, and each pulse's Pauli images through
     *  the train suffix. */
    struct FusedTrace
    {
        Frame1QKind kind = Frame1QKind::Identity;
        uint8_t namedCount = 0;
        std::array<GateType, 6> named{};
        std::vector<std::array<uint8_t, 3>> mapped; //!< per pulse
    };

    /** One per Markov emission (dt > 0 and a Markov flag enabled):
     *  the T1 checkpoint's reference class and branch-flip support. */
    struct T1Trace
    {
        uint8_t t1Ref = 0; //!< 0 / 1 deterministic, 2 superposed
        int site = -1;     //!< sites[] index (superposed, depth > 0)
        std::vector<QubitId> flipX, flipZ;
    };

    /** One per Meas step. */
    struct MeasTrace
    {
        bool random = false;
        uint8_t refBit = 0;
        std::vector<QubitId> flipX, flipZ;
    };

    /** One per Reset step. */
    struct ResetTrace
    {
        bool random = false;
        std::vector<QubitId> flipX, flipZ;
    };

    std::vector<FusedTrace> fused;
    std::vector<T1Trace> t1;
    std::vector<MeasTrace> meas;
    std::vector<ResetTrace> resets;

    /** Branch-hop tableau snapshots, indexed by random-T1 ordinal;
     *  FrameT1Site::opIndex is stamped at bind time. */
    std::vector<FrameT1Site> sites;
};

/**
 * A compiled program with its device constants factored out: the
 * unit the ProgramCache shares across machines, drift cycles, and
 * mask variants.  `plan` carries zeroed constants and empty
 * crosstalk; `kind` is the resolved backend; exactly one of
 * `tables` / `frame` is set when `compiled` (none on the per-shot
 * interpreted stabilizer path).
 */
struct ProgramSkeleton
{
    ExecutionPlan plan;
    std::vector<LinkWindows> linkWindows;
    std::optional<ShotTables> tables;
    std::optional<FrameSkeleton> frame;
    BackendKind kind = BackendKind::Auto;
    bool compiled = false;
};

/**
 * Structure phase: lower the schedule into an unbound plan skeleton
 * (steps with constants zeroed, link-activity windows recorded,
 * crosstalk left empty).  Does not touch a Calibration; `tables` /
 * `frame` / `kind` are filled by the caller (NoisyMachine).
 */
ProgramSkeleton buildPlanSkeleton(const ScheduledCircuit &sched,
                                  const NoiseFlags &flags);

/**
 * Bind phase: stamp @p cal's constants (readout / CX / 1Q-pulse
 * error rates, crosstalk sources) into a copy of the skeleton's
 * plan.  The result is field-for-field identical to
 * buildPlan(sched, cal, flags).
 */
ExecutionPlan bindPlan(const ProgramSkeleton &skel,
                       const Calibration &cal,
                       const NoiseFlags &flags);

/** Structure phase of the dense compiler: precompute every Matrix2
 *  product of @p plan's step stream. */
ShotTables buildShotTables(const ExecutionPlan &plan);

/**
 * Bind phase of the dense compiler: evaluate the
 * calibration-dependent constants (OU transitions, crosstalk folds,
 * fixed-point thresholds) against a *bound* plan and splice in the
 * precomputed tables.  Identical output to compileShotProgram.
 */
ShotProgram bindShotProgram(const ExecutionPlan &plan,
                            const ShotTables &tables,
                            const Calibration &cal,
                            const NoiseFlags &flags);

/**
 * Structure phase of the frame compiler: run the noiseless reference
 * tableau once over @p plan, recording every reference query and
 * fused-train resolution.  Reads ADAPT_FRAME_BRANCH_DEPTH.
 *
 * @pre As compileFrameProgram (all-Clifford, Pauli-expressible
 *      flags, no OU, no non-Pauli conditionals).
 */
FrameSkeleton buildFrameSkeleton(const ExecutionPlan &plan,
                                 const NoiseFlags &flags);

/**
 * Bind phase of the frame compiler: replay the recorded reference
 * trace against a *bound* plan, evaluating FrameBernoullis from the
 * calibration.  Identical output to compileFrameProgram under the
 * skeleton's branch depth.
 */
FrameProgram bindFrameProgram(const ExecutionPlan &plan,
                              const FrameSkeleton &skel,
                              const Calibration &cal,
                              const NoiseFlags &flags);

/**
 * Compile the branch-tail sub-program for random-reference T1
 * checkpoint @p ordinal of @p parent: the suffix of the parent's op
 * stream after that checkpoint, re-resolved against the post-jump
 * reference (X · postselect(ref, 1) at the checkpoint — the tableau
 * snapshot the parent recorded at compile time).  Gate and error ops
 * copy verbatim (they are reference-independent); measurements,
 * resets, T1 classifications, and conditional-gate reference bits are
 * re-derived by advancing a copy of the snapshot.  The tail's
 * branchDepth is one less than the parent's, so tail trees bottom out
 * at the ADAPT_FRAME_BRANCH_DEPTH cap.
 *
 * @pre parent.branchTails and ordinal < parent.t1Sites.size()
 */
FrameProgram compileFrameTail(const FrameProgram &parent,
                              uint32_t ordinal);

/**
 * Lazy, thread-safe store of compiled branch tails, keyed by
 * (parent program, ordinal) — tails of tails nest naturally because
 * the stored programs have stable addresses.  Shared by all the shot
 * chunks of a prepared job: a tail is compiled at most once per job
 * no matter how many lanes fire through it.  Compilation is
 * deterministic, so the cache never changes results — only cost.
 */
class FrameTailCache final : public FrameTailSource
{
  public:
    const FrameProgram &tail(const FrameProgram &parent,
                             uint32_t ordinal) override;

  private:
    std::mutex mu_;
    std::map<std::pair<const FrameProgram *, uint32_t>,
             std::unique_ptr<FrameProgram>>
        tails_;
};

// ------------------------------------------------------------------
// Per-shot execution.
// ------------------------------------------------------------------

/** A stochastic event resolved by the draw pass. */
struct ShotEvent
{
    enum class Kind : uint8_t { TwirlZ, T1Jump, DephZ, Err1Q, Err2Q };
    uint32_t op = 0;    //!< index into ShotProgram::ops
    uint32_t pulse = 0; //!< firing pulse (Err1Q)
    uint64_t word = 0;  //!< reserved raw RNG word (T1Jump)
    Kind kind = Kind::TwirlZ;
    uint8_t a = 0, b = 0; //!< Pauli codes (Err1Q / Err2Q)
};

/**
 * Everything one shot's draw pass resolved: the dynamic phases, the
 * reserved measurement / reset RNG words, and the fired events.  A
 * ShotTape plus the compiled program fully determines the shot — the
 * replay consumes no RNG — so tapes for a whole block can be drawn up
 * front and replayed in any grouping without changing any outcome.
 */
struct ShotTape
{
    std::vector<double> phases;     //!< per phaseSlot
    std::vector<uint64_t> measWord; //!< 2 per measSlot
    std::vector<ShotEvent> events;
};

/** Occupancy counters of the grouped dense path (BatchShotReplayer),
 *  reported per run through RunOutcome::denseStats. */
struct DenseBatchStats
{
    int64_t shots = 0;   //!< shots routed through the grouped path
    int64_t blocks = 0;  //!< <= 64-shot draw blocks formed
    int64_t groups = 0;  //!< signature groups (singletons included)
    int64_t batchedShots = 0;  //!< shots whose prefix was amortized
                               //!< (SoA planes or shared scalar)
    int64_t noErrorShots = 0;  //!< shots whose draw pass fired nothing

    void merge(const DenseBatchStats &other)
    {
        shots += other.shots;
        blocks += other.blocks;
        groups += other.groups;
        batchedShots += other.batchedShots;
        noErrorShots += other.noErrorShots;
    }
};

/**
 * Per-chunk worker that replays a compiled program.  Owns the state
 * vector, the outcome packer, and the reusable draw tape; one
 * instance serves all the shots of a chunk.
 */
class ShotReplayer
{
  public:
    ShotReplayer(const ExecutionPlan &plan, const ShotProgram &prog);

    /**
     * Execute one shot: draw pass, then fast or general replay.
     * Consumes RNG streams forked off @p shot_rng exactly as the
     * interpreted path does, and returns the same outcome key.
     */
    uint64_t runShot(const Rng &shot_rng);

    /**
     * Run shots [first_shot, first_shot + count), forking each shot's
     * streams from (base, absolute shot index) as the engine does,
     * and count the outcomes into @p hist.
     *
     * When @p token is non-null it is polled before every shot and
     * the block stops early on a stop request — the single-chunk
     * cancellable path, giving one-shot cancellation latency while
     * keeping the completed prefix bit-identical to an uninterrupted
     * run (per-shot RNG streams never depend on where a run stops).
     *
     * @return Shots actually executed (== count unless stopped).
     */
    int64_t runBlock(const Rng &base, int64_t first_shot,
                     int64_t count, FlatAccumulator &hist,
                     const CancellationToken *token = nullptr);

    /**
     * Draw pass only: resolve every stochastic outcome of the shot
     * into @p tape (sized / cleared here).  Consumes exactly the RNG
     * words runShot's draw pass would.
     */
    void drawTape(const Rng &shot_rng, ShotTape &tape);

    /** Replay a previously drawn tape from the |0...0> state and
     *  return the outcome key (the replay half of runShot). */
    uint64_t replayShot(const ShotTape &tape);

    /** Shots replayed on the no-error fast stream so far. */
    uint64_t fastShots() const { return fastShots_; }

    /** Total shots executed so far. */
    uint64_t totalShots() const { return totalShots_; }

  private:
    friend class BatchShotReplayer;

    /** Replay stream ops [first_op, end) against the current state,
     *  with @p cursor positioned at the first tape event whose op
     *  index is >= first_op. */
    void replayRange(const std::vector<OpRef> &stream,
                     uint32_t first_op, const ShotTape &tape,
                     size_t cursor);

    const ExecutionPlan &plan_;
    const ShotProgram &prog_;
    StateVector sv_;
    OutcomePacker packer_;

    Rng gateRng_;
    std::vector<Rng> qubitRng_;
    std::vector<double> ouVal_;

    ShotTape tape_; //!< runShot's reusable tape

    uint64_t fastShots_ = 0;
    uint64_t totalShots_ = 0;
};

/**
 * Shot-batched dense replay: the grouped execution strategy behind
 * `ADAPT_DENSE_SHOT_BATCH` (docs/README).
 *
 * Each <= 64-shot block first runs the state-independent draw pass
 * for every shot, then groups shots whose tapes resolved to the same
 * *event signature* — the sequence of (op, pulse, kind, Pauli codes),
 * ignoring the per-shot measurement words.  At realistic error rates
 * the empty signature (no event fired) dominates, so one group
 * usually holds most of the block.  Each group's gate stream is then
 * executed once over a structure-of-arrays BatchStateVector that
 * advances all member shots per amplitude sweep, up to the group's
 * first *divergent* op — a measurement, reset, or population-
 * conditional T1 jump, whose effect depends on per-shot state or
 * per-shot words — at which point every lane is peeled back into the
 * scalar ShotReplayer to finish alone.
 *
 * Bit-identity: tapes are drawn from the same per-shot forks in the
 * same order as ShotReplayer::runBlock, the SoA kernels reproduce the
 * scalar kernels' roundings exactly, and divergence peels *before*
 * any state-dependent resolution, so every outcome key equals the
 * per-shot path's for any seed, thread count, and block split.
 */
class BatchShotReplayer
{
  public:
    BatchShotReplayer(const ExecutionPlan &plan,
                      const ShotProgram &prog);

    /** Widest register the SoA planes will allocate (dim x 64 lanes
     *  of split re/im doubles: 4 MiB at the cap). */
    static constexpr int kMaxBatchQubits = 12;

    /** Lanes per draw block (matches the engine's kShotBlock). */
    static constexpr int kBatchLanes = 64;

    /** True when @p prog is small enough for the SoA planes; larger
     *  registers stay on the per-shot path (their per-op sweeps are
     *  wide enough to amortize dispatch already). */
    static bool eligible(const ShotProgram &prog)
    {
        return prog.numQubits <= kMaxBatchQubits;
    }

    /**
     * Grouped-path equivalent of ShotReplayer::runBlock: identical
     * outcomes, identical per-shot RNG forks.  @p token, when
     * non-null, is polled once per <= 64-shot draw block, so a stop
     * request truncates to an exact block-prefix of the range.
     */
    int64_t runBlock(const Rng &base, int64_t first_shot,
                     int64_t count, FlatAccumulator &hist,
                     const CancellationToken *token = nullptr);

    const DenseBatchStats &stats() const { return stats_; }
    uint64_t fastShots() const { return scalar_.fastShots(); }
    uint64_t totalShots() const { return scalar_.totalShots(); }

  private:
    void runSubBlock(const Rng &base, int64_t first_shot, int count,
                     FlatAccumulator &hist);

    /**
     * Draw the tapes of shots [first_shot, first_shot + count) into
     * tapes_[0..count) with the per-shot RNG streams advanced in
     * structure-of-arrays lockstep (Rng::stepLanes), consuming every
     * stream exactly as count calls of ShotReplayer::drawTape would.
     * Only valid when the program draws no per-shot Gaussians
     * (!flags.ouDephasing — see drawBatched_).
     */
    void drawBlockTapes(const Rng &base, int64_t first_shot,
                        int count);

    /** First op of @p stream whose replay depends on per-shot state
     *  or words (Meas / Reset / T1Jump-carrying Markov); returns
     *  stream.size() when none.  @p cursor_out receives the tape
     *  cursor at the divergence point. */
    uint32_t divergenceOp(const std::vector<OpRef> &stream,
                          const ShotTape &rep,
                          size_t &cursor_out) const;

    /**
     * Execute stream ops [from, to) of the group whose members are
     * tape indices @p lanes on @p sv — the SoA planes
     * (BatchStateVector, one lane per member) or, when every
     * member's dynamic phases are bitwise identical, a single scalar
     * StateVector whose final state is shared by all members.
     * @pre Every event of @p rep sits at an op >= from.
     */
    template <class SV>
    void replayPrefix(SV &sv, const std::vector<OpRef> &stream,
                      uint32_t from, uint32_t to, const ShotTape &rep,
                      const int *lanes, int group_size);

    /** True when every group member's tape carries bitwise-identical
     *  dynamic phases (always, when the program has no phase slots):
     *  the group prefix is lane-invariant and can run once. */
    bool phasesUniform(const ShotTape &rep, const int *lanes,
                       int group_size) const;

    /** Memory budget for the reference checkpoints; refStride_ (ops
     *  between checkpoints) is the smallest stride fitting it, so
     *  small registers checkpoint every op and a shot's replay
     *  starts exactly at its first event. */
    static constexpr size_t kRefBudgetBytes = size_t{4} << 20;

    /**
     * Replay a shot whose tape fired at least one event, starting
     * from the reference checkpoint at or below its first event
     * instead of |0...0> (refMode_ only: the event-free prefix is
     * shot-invariant, so ops [0, cp) are skipped outright).
     */
    uint64_t replayShotFromRef(const ShotTape &tape);

    ShotReplayer scalar_;
    BatchStateVector bsv_;
    std::vector<ShotTape> tapes_;  //!< kBatchLanes reusable tapes
    std::vector<Complex> laneAmps_;     //!< extractLane scratch
    std::vector<Complex> laneFactors_;  //!< per-lane phase scratch
    bool drawBatched_;  //!< SoA draw pass valid (no OU Gaussians)
    std::vector<uint64_t> gateWords_;   //!< [word][lane] gate stream
    std::vector<uint64_t> qubitWords_;  //!< [qubit][word][lane]

    /**
     * Event-free reference evolution (refMode_, i.e. no per-shot
     * dynamic phases): the state of the general op stream before op
     * c * refStride_, for every checkpoint c up to the stream's
     * first Meas / Reset op (refDivOp_).  Shot-invariant — any
     * shot's state before its first event is the reference state —
     * so it is built once at construction and each error shot's
     * replay starts at the checkpoint below its first event.
     */
    bool refMode_;
    uint32_t refDivOp_ = 0;
    uint32_t refStride_ = 1;        //!< ops between checkpoints
    std::vector<Complex> refAmps_;  //!< [checkpoint][basis]
    ShotTape emptyTape_;            //!< reference (no events)

    /** The no-error group's prefix on the fast stream is the same
     *  tape-independent evolution (refMode_): its state at the fast
     *  stream's first Meas / Reset op, computed once. */
    uint32_t refFastDivOp_ = 0;
    std::vector<Complex> refFastAmps_;

    DenseBatchStats stats_;
};

} // namespace adapt

#endif // ADAPT_NOISE_COMPILED_HH
