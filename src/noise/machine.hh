/**
 * @file
 * NoisyMachine: the simulated quantum computer.
 *
 * This is the stand-in for the IBMQ hardware endpoint: it accepts a
 * scheduled executable (with or without DD pulses) and returns a
 * sampled output distribution.  Each shot is one Monte-Carlo
 * trajectory on a pluggable simulator backend (sim/backend.hh).
 *
 * On the dense backend, idle dephasing is applied as *coherent* RZ
 * rotations interleaved in time with the circuit's pulses, so DD echo
 * physics (refocusing, pulse-spacing sensitivity) emerges exactly
 * rather than by construction.  All-Clifford executables whose
 * enabled noise channels are Pauli-expressible — every DD-padded
 * decoy and characterization circuit under the ablation flags — are
 * automatically routed to the stabilizer tableau instead, which runs
 * the same trajectories at polynomial cost (Sec. 4.2 / Table 2
 * scalability).
 */

#ifndef ADAPT_NOISE_MACHINE_HH
#define ADAPT_NOISE_MACHINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/cancellation.hh"
#include "common/stats.hh"
#include "device/device.hh"
#include "noise/compiled.hh"
#include "noise/noise_model.hh"
#include "sim/backend.hh"
#include "sim/frame_batch.hh"
#include "transpile/schedule.hh"

namespace adapt
{

/** Internal prepared-job state (plan + compiled program). */
struct PreparedJob;

/** Process-wide skeleton cache (noise/program_cache.hh). */
class ProgramCache;

/**
 * How shots execute.
 *
 * Dense jobs:
 *  - Compiled (default): the job is lowered once into a flat
 *    ShotProgram (noise/compiled.hh) and every shot replays it — a
 *    cheap draw pass resolving all stochastic outcomes against
 *    fixed-point thresholds, then a no-error fast replay when nothing
 *    fired.  Small jobs additionally batch the shot dimension: the
 *    draw pass runs for a whole kShotBlock block up front, shots with
 *    identical resolved error patterns execute the gate stream once
 *    on a multi-shot SoA statevector, and per-shot divergence peels
 *    lanes back to the scalar replayer (ADAPT_DENSE_SHOT_BATCH=0
 *    restores the per-shot replay).  Bit-identical to Interpreted for
 *    any seed/thread count either way.
 *  - Interpreted: the historical per-shot plan walk (the reference
 *    semantics the compiled path is tested against).
 *
 * Stabilizer jobs:
 *  - Compiled (default): the batched Pauli-frame engine
 *    (sim/frame_batch.hh) — one reference tableau simulation at
 *    compile time, then bit-packed frames propagating laneCount()
 *    shots per pass (ADAPT_FRAME_LANES-selectable, default
 *    kFrameLanes).  Bit-identical to itself for any thread count
 *    and batch-vs-serial, and statistically equivalent (not
 *    draw-identical) to Interpreted; jobs with per-shot OU twirl
 *    draws, or with ADAPT_FRAME_BATCH=0 in the environment, fall
 *    back to Interpreted.
 *  - Interpreted: one full Aaronson-Gottesman tableau per shot (the
 *    reference semantics the frame engine is tested against).
 */
enum class ExecMode
{
    Compiled,
    Interpreted,
};

/**
 * A scheduled executable lowered and compiled once for a specific
 * NoisyMachine (calibration + noise flags baked in), reusable across
 * run() calls and seeds.  Cheap to copy (shared immutable state).
 * Using it with a different machine than the one that prepared it is
 * undefined.
 */
class PreparedCircuit
{
  public:
    PreparedCircuit() = default;

    /** Resolved backend this job will execute on. */
    BackendKind backend() const;

    /** True when this stabilizer job carries a compiled FrameProgram
     *  (ExecMode::Compiled will run the batch frame engine). */
    bool frameBatched() const;

    /** True once prepare() has populated this handle. */
    bool valid() const { return impl_ != nullptr; }

  private:
    friend class NoisyMachine;
    std::shared_ptr<const PreparedJob> impl_;
};

/**
 * Shots per cancellation block on the dense / per-shot paths: the
 * granularity at which wave-structured cancellable runs commit work
 * (the batch frame engine's natural block is its program's
 * laneCount() instead).  This is also the grouped dense replay's
 * batching window: a block's shots draw their tapes together and
 * shots with identical error patterns share one SoA execution.
 * Per-shot RNG streams make any block size prefix-exact; this one
 * just bounds how much work a multi-chunk run can lose to a stop
 * request.
 */
constexpr int kShotBlock = 64;

/**
 * Caller-supplied controls for a cancellable run: a stop token
 * (cancel flag and/or deadline, polled at shot-block boundaries) and
 * an optional progress callback.
 *
 * progress(shots_done) fires on the driving thread after every
 * committed wave of blocks with the cumulative shot count — the
 * JobServer uses it for live progress and as the deterministic
 * injection point for worker-stall faults.  It is never called
 * concurrently for a single run().
 */
struct RunControl
{
    CancellationToken token;
    std::function<void(int64_t)> progress;
};

/**
 * Outcome of a cancellable run.  When a stop request lands mid-job,
 * dist holds the histogram of the shot blocks completed before it —
 * a contiguous prefix [0, shotsDone) that is bit-identical to the
 * first shotsDone shots of an uninterrupted run with the same seed
 * (per-block RNG streams; equivalently, to run(prepared, shotsDone,
 * seed) exactly).
 */
struct RunOutcome
{
    Distribution dist;
    int64_t shotsDone = 0;
    bool partial = false;               //!< stopped before all shots
    StopCause cause = StopCause::None;  //!< why, when partial
    FrameBatchStats frameStats;         //!< batch frame path only
    DenseBatchStats denseStats;         //!< grouped dense path only
};

/** The simulated hardware endpoint. */
class NoisyMachine
{
  public:
    /**
     * @param device Machine (topology + calibration generator).
     * @param cycle Calibration cycle to load.
     * @param flags Noise channels to enable.
     */
    explicit NoisyMachine(const Device &device, int cycle = 0,
                          NoiseFlags flags = NoiseFlags::all());

    const Calibration &calibration() const { return cal_; }
    const Device &device() const { return device_; }
    const NoiseFlags &flags() const { return flags_; }

    /**
     * Execute @p sched for @p shots trajectories.
     *
     * Shots run in parallel across the process thread pool.  Every
     * shot draws from RNG streams forked from (run_seed, shot index)
     * alone, so the output distribution is bit-identical for any
     * thread count, including a serial run.
     *
     * The simulator backend is pluggable: BackendKind::Auto (default)
     * inspects the executable — every gate Clifford, every enabled
     * noise channel Pauli-expressible — and routes eligible jobs to
     * the O(n*m)-per-shot stabilizer fast path, falling back to the
     * dense state vector otherwise.  Forcing
     * BackendKind::Stabilizer on an ineligible job throws UsageError.
     *
     * @param run_seed Seed for this job; identical seeds reproduce
     *                 identical output distributions.
     * @param threads Shot parallelism; >= 1 forces that many chunks,
     *                <= 0 (default) uses ADAPT_NUM_THREADS or the
     *                hardware concurrency.
     * @param backend Simulator backend selection.
     * @return Sampled distribution over the executable's classical
     *         bits.
     */
    Distribution run(const ScheduledCircuit &sched, int shots,
                     uint64_t run_seed = 1, int threads = 0,
                     BackendKind backend = BackendKind::Auto,
                     ExecMode mode = ExecMode::Compiled) const;

    /**
     * Lower and compile @p sched once, for repeated execution.
     *
     * Dense jobs are compiled into a flat ShotProgram (the expensive
     * shot-invariant work: plan lowering, pulse-product fusion,
     * noise-constant precomputation); stabilizer jobs are compiled
     * into a FrameProgram for the batch Pauli-frame engine (the
     * reference tableau simulation runs here, once).  The handle is
     * immutable and thread-safe to share.
     */
    PreparedCircuit prepare(const ScheduledCircuit &sched,
                            BackendKind backend = BackendKind::Auto) const;

    /** Execute a prepared job; identical output to the run() overload
     *  taking the schedule it was prepared from. */
    Distribution run(const PreparedCircuit &prepared, int shots,
                     uint64_t run_seed = 1, int threads = 0,
                     ExecMode mode = ExecMode::Compiled) const;

    /**
     * Execute a batch of independent jobs, one distribution per job.
     *
     * Jobs fan out across the process thread pool (outer loop), and
     * the shot parallelism inside run() degrades to serial within the
     * pool workers, mirroring evaluateSuite — so a batch never
     * oversubscribes, and a single-job batch transparently keeps full
     * shot parallelism.  Every job draws from RNG streams forked from
     * its own seed alone, so the output is bit-identical to
     * jobs.size() serial run() calls (with the same seeds) at any
     * thread count.
     *
     * This is the execution layer under the ADAPT mask search: all
     * 2^k candidate masks of a neighbourhood are independent given
     * the frozen bits, so the search submits each neighbourhood as
     * one batch (adapt/search.cc), as do the Runtime-Best candidate
     * sweep and the characterization sweeps.
     *
     * @param jobs Scheduled executables; may be empty (returns {}).
     * @param shots Trajectories per job.
     * @param seeds One run seed per job (same contract as run()).
     *              @pre seeds.size() == jobs.size()
     * @param threads Job-level parallelism; <= 0 (default) uses
     *                ADAPT_NUM_THREADS or the hardware concurrency.
     * @param backend Backend selection, resolved per job (Auto may
     *                pick different backends for different jobs).
     * @return outputs[i] == run(jobs[i], shots, seeds[i], ..) for
     *         every i.
     */
    std::vector<Distribution>
    runBatch(std::span<const ScheduledCircuit> jobs, int shots,
             std::span<const uint64_t> seeds, int threads = 0,
             BackendKind backend = BackendKind::Auto,
             ExecMode mode = ExecMode::Compiled) const;

    /** Batched execution of pre-prepared jobs (one compilation per
     *  job, shared by all its shots); same contract as above. */
    std::vector<Distribution>
    runBatch(std::span<const PreparedCircuit> jobs, int shots,
             std::span<const uint64_t> seeds, int threads = 0,
             ExecMode mode = ExecMode::Compiled) const;

    /**
     * Cancellable execution of a prepared job.
     *
     * Identical to run() while control stays quiet — same chunking,
     * same RNG streams, bit-identical output.  When control.token is
     * armed, shots execute in waves of fixed blocks (kShotBlock shots
     * on the dense / per-shot paths, the program's laneCount() on the
     * batch frame path) and the token is polled between waves — single-chunk
     * dense runs poll per shot — so a cancel or deadline takes
     * effect within one shot-chunk and the returned prefix is
     * bit-identical to an uninterrupted run's first shotsDone shots.
     *
     * control.progress (if set) fires after each committed wave with
     * the cumulative shot count.
     */
    RunOutcome runPartial(const PreparedCircuit &prepared, int shots,
                          uint64_t run_seed = 1, int threads = 0,
                          const RunControl &control = {},
                          ExecMode mode = ExecMode::Compiled) const;

    /**
     * Cancellable batch: jobs check control.token before starting
     * (a stopped token skips the job entirely — shotsDone 0, partial,
     * cause set) and each started job runs cancellably under the same
     * token.  Jobs that completed before the stop request are
     * bit-identical to solo run() calls no matter when a sibling was
     * cancelled (per-job seeds).  control.progress is not forwarded
     * to the per-job runs (jobs execute concurrently; the callback
     * contract is per-run).
     */
    std::vector<RunOutcome>
    runBatchPartial(std::span<const PreparedCircuit> jobs, int shots,
                    std::span<const uint64_t> seeds, int threads,
                    const RunControl &control,
                    ExecMode mode = ExecMode::Compiled) const;

    /**
     * @name Shard-range execution (serve/shard_executor.hh)
     *
     * A job's shot range factors into fixed blocks — the program's
     * laneCount() on the batch frame path, kShotBlock otherwise — and
     * every block's
     * randomness is forked from (run_seed, absolute block / shot
     * index) alone.  runShardRange executes one contiguous block
     * subrange and returns its histogram as sorted (key, count)
     * items; because blocks are independent, concatenating the item
     * lists of any partition of [0, blockCount) and folding duplicate
     * keys (mergeShardItems) reproduces run()'s output bit for bit —
     * regardless of which process ran which range, in what order, or
     * how many times a range was re-executed after a failure.
     * @{
     */

    /** Shots per shard block for this prepared job under @p mode. */
    int64_t shardBlockShots(const PreparedCircuit &prepared,
                            ExecMode mode = ExecMode::Compiled) const;

    /** Number of shard blocks covering @p shots. */
    int64_t shardBlockCount(const PreparedCircuit &prepared, int shots,
                            ExecMode mode = ExecMode::Compiled) const;

    /**
     * Execute blocks [block_lo, block_hi) of a @p shots-shot job
     * serially (shard workers are single-threaded by design — the
     * parallelism is the process fan-out) and return the subrange's
     * histogram as key-sorted, key-unique (outcome, count) items.
     *
     * @param progress Optional; fires after each committed block with
     *        the cumulative shots done *within this range* — the
     *        worker's heartbeat hook.
     */
    std::vector<std::pair<uint64_t, uint64_t>>
    runShardRange(const PreparedCircuit &prepared, int shots,
                  int64_t block_lo, int64_t block_hi,
                  uint64_t run_seed = 1,
                  ExecMode mode = ExecMode::Compiled,
                  const std::function<void(int64_t)> &progress = {}) const;

    /** @} */

    /**
     * The backend Auto would pick for @p sched under this machine's
     * noise flags (introspection for logs / benches / tests).
     */
    BackendKind chooseBackend(const ScheduledCircuit &sched) const;

    /**
     * The skeleton cache prepare() consults: compilation is split
     * into a device-independent structure phase (ProgramSkeleton,
     * cached under a fingerprint of circuit + flags + backend) and a
     * cheap per-calibration bind phase, so re-preparing the same
     * executable against a drifted calibration, a mask variant's
     * sibling machine, or a repeated JobServer submission skips the
     * expensive half.  Defaults to ProgramCache::processShared();
     * nullptr compiles every prepare cold.
     */
    void setProgramCache(ProgramCache *cache) { cache_ = cache; }
    ProgramCache *programCache() const { return cache_; }

  private:
    /** prepare() with the shot-program compilation optional (skipped
     *  for pure ExecMode::Interpreted runs, which never read it). */
    PreparedCircuit prepareImpl(const ScheduledCircuit &sched,
                                BackendKind backend,
                                bool compile) const;

    const Device &device_;
    Calibration cal_;
    NoiseFlags flags_;
    ProgramCache *cache_ = nullptr;
};

/**
 * Fold concatenated shard items (any order, duplicate keys allowed)
 * into a Distribution.  Sort + exact integer addition: the result is
 * identical for any partition of a job into ranges and any arrival
 * order of their item lists — the coordinator-side half of the
 * runShardRange contract.
 */
Distribution
mergeShardItems(std::vector<std::pair<uint64_t, uint64_t>> items);

} // namespace adapt

#endif // ADAPT_NOISE_MACHINE_HH
