/**
 * @file
 * NoisyMachine: the simulated quantum computer.
 *
 * This is the stand-in for the IBMQ hardware endpoint: it accepts a
 * scheduled executable (with or without DD pulses) and returns a
 * sampled output distribution.  Each shot is one Monte-Carlo
 * trajectory on a pluggable simulator backend (sim/backend.hh).
 *
 * On the dense backend, idle dephasing is applied as *coherent* RZ
 * rotations interleaved in time with the circuit's pulses, so DD echo
 * physics (refocusing, pulse-spacing sensitivity) emerges exactly
 * rather than by construction.  All-Clifford executables whose
 * enabled noise channels are Pauli-expressible — every DD-padded
 * decoy and characterization circuit under the ablation flags — are
 * automatically routed to the stabilizer tableau instead, which runs
 * the same trajectories at polynomial cost (Sec. 4.2 / Table 2
 * scalability).
 */

#ifndef ADAPT_NOISE_MACHINE_HH
#define ADAPT_NOISE_MACHINE_HH

#include <cstdint>

#include "common/stats.hh"
#include "device/device.hh"
#include "noise/noise_model.hh"
#include "sim/backend.hh"
#include "transpile/schedule.hh"

namespace adapt
{

/** The simulated hardware endpoint. */
class NoisyMachine
{
  public:
    /**
     * @param device Machine (topology + calibration generator).
     * @param cycle Calibration cycle to load.
     * @param flags Noise channels to enable.
     */
    explicit NoisyMachine(const Device &device, int cycle = 0,
                          NoiseFlags flags = NoiseFlags::all());

    const Calibration &calibration() const { return cal_; }
    const Device &device() const { return device_; }
    const NoiseFlags &flags() const { return flags_; }

    /**
     * Execute @p sched for @p shots trajectories.
     *
     * Shots run in parallel across the process thread pool.  Every
     * shot draws from RNG streams forked from (run_seed, shot index)
     * alone, so the output distribution is bit-identical for any
     * thread count, including a serial run.
     *
     * The simulator backend is pluggable: BackendKind::Auto (default)
     * inspects the executable — every gate Clifford, every enabled
     * noise channel Pauli-expressible — and routes eligible jobs to
     * the O(n*m)-per-shot stabilizer fast path, falling back to the
     * dense state vector otherwise.  Forcing
     * BackendKind::Stabilizer on an ineligible job throws UsageError.
     *
     * @param run_seed Seed for this job; identical seeds reproduce
     *                 identical output distributions.
     * @param threads Shot parallelism; >= 1 forces that many chunks,
     *                <= 0 (default) uses ADAPT_NUM_THREADS or the
     *                hardware concurrency.
     * @param backend Simulator backend selection.
     * @return Sampled distribution over the executable's classical
     *         bits.
     */
    Distribution run(const ScheduledCircuit &sched, int shots,
                     uint64_t run_seed = 1, int threads = 0,
                     BackendKind backend = BackendKind::Auto) const;

    /**
     * The backend Auto would pick for @p sched under this machine's
     * noise flags (introspection for logs / benches / tests).
     */
    BackendKind chooseBackend(const ScheduledCircuit &sched) const;

  private:
    const Device &device_;
    Calibration cal_;
    NoiseFlags flags_;
};

} // namespace adapt

#endif // ADAPT_NOISE_MACHINE_HH
