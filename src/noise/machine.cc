#include "noise/machine.hh"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <vector>

#include "common/flat_accumulator.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "sim/backend.hh"

namespace adapt
{

NoisyMachine::NoisyMachine(const Device &device, int cycle,
                           NoiseFlags flags)
    : device_(device), cal_(device.calibration(cycle)), flags_(flags)
{
}

namespace
{

constexpr double kNsToUs = 1e-3;

/** A crosstalk source seen by one spectator qubit. */
struct CrosstalkSource
{
    TimeNs start;
    TimeNs end;
    double radPerUs;
};

/** Overlap of [a0, a1) and [b0, b1) in microseconds. */
double
overlapUs(TimeNs a0, TimeNs a1, TimeNs b0, TimeNs b1)
{
    return std::max(0.0, std::min(a1, b1) - std::max(a0, b0)) * kNsToUs;
}

/** Apply a uniformly random single-qubit Pauli. */
void
applyRandomPauli1Q(SimBackend &state, QubitId q, Rng &rng)
{
    state.applyPauli(static_cast<int>(rng.uniformInt(3)) + 1, q);
}

/** Apply a random non-identity two-qubit Pauli pair. */
void
applyRandomPauli2Q(SimBackend &state, QubitId a, QubitId b, Rng &rng)
{
    const auto code = static_cast<int>(rng.uniformInt(15)) + 1;
    state.applyPauli(code & 3, a);
    state.applyPauli(code >> 2, b);
}

/** One pulse of a fused single-qubit train. */
struct Pulse
{
    Gate gate; //!< dense-relabelled operands (tableau replay)
    Matrix2 matrix;
    double errorProb;
};

/** One step of the pre-compiled execution plan. */
struct PlanStep
{
    enum class Kind { Fused1Q, TwoQubit, Meas } kind;
    int q = -1;
    int q2 = -1;
    TimeNs start = 0.0;
    TimeNs end = 0.0;
    std::vector<Pulse> pulses;       // Fused1Q
    GateType twoQubitType = GateType::CX;
    double cxError = 0.0;            // TwoQubit
    int clbit = 0;                   // Meas
    double err01 = 0.0, err10 = 0.0; // Meas
};

/**
 * The shot-invariant execution plan: the schedule lowered onto dense
 * qubit indices, with calibration data baked into every step and
 * crosstalk sources precomputed per spectator.  Built once per run()
 * and shared read-only by all shot workers.
 */
struct ExecutionPlan
{
    std::vector<QubitId> active; //!< dense index -> physical qubit
    std::vector<std::vector<CrosstalkSource>> xtalk; //!< per dense q
    std::vector<PlanStep> steps;

    /** Every gate Clifford: eligible for the stabilizer fast path. */
    bool clifford = true;

    /** Highest classical bit written; > 63 switches the outcome keys
     *  to OutcomePacker fingerprints (wide stabilizer registers). */
    int maxClbit = 0;
};

ExecutionPlan
buildPlan(const ScheduledCircuit &sched, const Calibration &cal,
          const NoiseFlags &flags)
{
    ExecutionPlan plan;

    // Dense-qubit relabelling: only qubits that execute ops occupy
    // state-vector space.
    const int n_phys = sched.numQubits();
    std::vector<int> dense(static_cast<size_t>(n_phys), -1);
    for (QubitId q = 0; q < n_phys; q++) {
        if (!sched.qubitOps(q).empty()) {
            dense[static_cast<size_t>(q)] =
                static_cast<int>(plan.active.size());
            plan.active.push_back(q);
        }
    }
    require(!plan.active.empty(), "cannot run an empty schedule");

    // Crosstalk sources per active qubit: every CX interval on a link
    // with a non-negligible coupling to this spectator.
    plan.xtalk.resize(plan.active.size());
    if (flags.crosstalk) {
        const int n_links = static_cast<int>(cal.links.size());
        for (int li = 0; li < n_links; li++) {
            const auto intervals = sched.linkActivity(li);
            if (intervals.empty())
                continue;
            for (size_t ai = 0; ai < plan.active.size(); ai++) {
                const double rate = cal.crosstalk(li, plan.active[ai]);
                if (std::abs(rate) < 1e-6)
                    continue;
                for (const auto &[t0, t1] : intervals)
                    plan.xtalk[ai].push_back({t0, t1, rate});
            }
        }
    }

    // Back-to-back single-qubit ops (decomposed gates, DD pulse
    // trains) are fused into one step: per-pulse *errors* are still
    // sampled individually, but the state vector is touched once per
    // train instead of once per pulse.  This keeps dense XY4 fills
    // (1000+ pulses on long idle windows) affordable.
    std::vector<PlanStep> &steps = plan.steps;
    steps.reserve(sched.ops().size());
    std::vector<int> open(plan.active.size(), -1);

    for (const TimedOp &op : sched.ops()) {
        const Gate &gate = op.gate;
        if (gate.type == GateType::Delay ||
            gate.type == GateType::Barrier || gate.type == GateType::I)
            continue;

        if (gate.type == GateType::Measure) {
            const int dq = dense[static_cast<size_t>(gate.qubit())];
            open[static_cast<size_t>(dq)] = -1;
            PlanStep step;
            step.kind = PlanStep::Kind::Meas;
            step.q = dq;
            step.start = op.start;
            step.end = op.end;
            step.clbit = gate.clbit < 0 ? static_cast<int>(gate.qubit())
                                        : gate.clbit;
            plan.maxClbit = std::max(plan.maxClbit, step.clbit);
            const auto &qc =
                cal.qubits[static_cast<size_t>(gate.qubit())];
            step.err01 = qc.readoutError01;
            step.err10 = qc.readoutError10;
            steps.push_back(std::move(step));
            continue;
        }

        if (isTwoQubitGate(gate.type)) {
            const int da = dense[static_cast<size_t>(gate.qubits[0])];
            const int db = dense[static_cast<size_t>(gate.qubits[1])];
            open[static_cast<size_t>(da)] = -1;
            open[static_cast<size_t>(db)] = -1;
            PlanStep step;
            step.kind = PlanStep::Kind::TwoQubit;
            step.q = da;
            step.q2 = db;
            step.start = op.start;
            step.end = op.end;
            step.twoQubitType = gate.type;
            require(op.linkIndex >= 0 || gate.type != GateType::CX,
                    "scheduled CX without a link index");
            step.cxError =
                op.linkIndex >= 0
                    ? cal.links[static_cast<size_t>(op.linkIndex)]
                          .cxError
                    : 0.0;
            steps.push_back(std::move(step));
            continue;
        }

        // Single-qubit unitary: fuse with the previous step when they
        // touch (gap below 1 ps) on this qubit.
        const int dq = dense[static_cast<size_t>(gate.qubit())];
        const bool physical_pulse =
            gate.type == GateType::X || gate.type == GateType::Y ||
            gate.type == GateType::SX || gate.type == GateType::SXdg;
        const double p_err =
            physical_pulse
                ? cal.qubits[static_cast<size_t>(gate.qubit())]
                      .gateError1Q
                : 0.0;
        plan.clifford = plan.clifford && gate.isClifford();
        Gate mapped = gate;
        mapped.qubits[0] = dq;
        Pulse pulse{std::move(mapped), gateMatrix(gate), p_err};
        const int open_idx = open[static_cast<size_t>(dq)];
        if (open_idx >= 0 &&
            op.start - steps[static_cast<size_t>(open_idx)].end < 1e-3) {
            steps[static_cast<size_t>(open_idx)].pulses.push_back(
                std::move(pulse));
            steps[static_cast<size_t>(open_idx)].end =
                std::max(steps[static_cast<size_t>(open_idx)].end,
                         op.end);
            continue;
        }
        PlanStep step;
        step.kind = PlanStep::Kind::Fused1Q;
        step.q = dq;
        step.start = op.start;
        step.end = op.end;
        step.pulses.push_back(std::move(pulse));
        open[static_cast<size_t>(dq)] = static_cast<int>(steps.size());
        steps.push_back(std::move(step));
    }
    return plan;
}

/**
 * One Monte-Carlo trajectory on @p state.  All randomness comes from
 * streams forked off @p shot_rng, so a shot's outcome depends only on
 * its index — never on which thread runs it or in which order.  On
 * the dense backend the draw sequence (and hence every trajectory) is
 * identical to the historical dense-only engine.
 */
uint64_t
runShot(const ExecutionPlan &plan, const Calibration &cal,
        const NoiseFlags &flags, SimBackend &state,
        OutcomePacker &packer, const Rng &shot_rng)
{
    const std::vector<QubitId> &active = plan.active;
    Rng gate_rng = shot_rng.fork(0x6a7e);

    // Per-qubit OU detuning processes with private streams.
    std::vector<std::optional<OuProcess>> ou(active.size());
    std::vector<Rng> qubit_rng;
    qubit_rng.reserve(active.size());
    for (size_t ai = 0; ai < active.size(); ai++) {
        qubit_rng.push_back(shot_rng.fork(0x0b5e + ai));
        const auto &qc = cal.qubits[static_cast<size_t>(active[ai])];
        if (flags.ouDephasing) {
            ou[ai].emplace(qc.ouSigmaRadPerUs, qc.ouTauUs,
                           qubit_rng[ai]);
        }
    }

    state.init();
    packer.clear();
    std::vector<TimeNs> last_end(active.size(), -1.0);

    // Coherent (refocusable) idle noise for qubit ai over [t0, t1):
    // slow OU detuning plus crosstalk from concurrent CNOTs.  Only
    // *idle* gaps accrue coherent Z phase — during a pulse the drive
    // dominates the dynamics.
    auto coherent_idle_noise = [&](size_t ai, TimeNs t0, TimeNs t1) {
        if (t1 - t0 <= 1e-9)
            return;
        const double dt_us = (t1 - t0) * kNsToUs;

        double phase = 0.0;
        if (flags.ouDephasing) {
            const double mid_us = (t0 + t1) / 2.0 * kNsToUs;
            phase += ou[ai]->at(mid_us, qubit_rng[ai]) * dt_us;
        }
        if (flags.crosstalk) {
            for (const CrosstalkSource &src : plan.xtalk[ai]) {
                phase += src.radPerUs *
                         overlapUs(t0, t1, src.start, src.end);
            }
        }
        if (phase != 0.0) {
            if (flags.twirlCoherent) {
                // Pauli twirl of the accrued phase, applied by the
                // engine so both backends sample the identical
                // (approximate) law under this flag.
                const double half = 0.5 * phase;
                const double p_z = std::sin(half) * std::sin(half);
                if (qubit_rng[ai].bernoulli(p_z))
                    state.applyPauli(3, static_cast<int>(ai)); // Z
            } else {
                state.applyIdlePhase(static_cast<int>(ai), phase,
                                     qubit_rng[ai]);
            }
        }
    };

    // Markovian noise (T1 relaxation, white dephasing) acts on
    // wall-clock time — *including* gate and DD pulse durations, so a
    // dense pulse train cannot shelter a qubit from it.
    auto markovian_noise = [&](size_t ai, double dt_us) {
        if (dt_us <= 0.0)
            return;
        const int dq = static_cast<int>(ai);
        const auto &qc =
            cal.qubits[static_cast<size_t>(active[ai])];

        if (flags.t1Damping) {
            // Thinned jump sampling: fire the relaxation jump with
            // probability gamma * P(|1>); the O(gamma^2) no-jump
            // reweighting is negligible at these rates.
            const double gamma = 1.0 - std::exp(-dt_us / qc.t1Us);
            if (qubit_rng[ai].bernoulli(gamma) &&
                qubit_rng[ai].bernoulli(state.populationOne(dq))) {
                state.applyDecayJump(dq);
            }
        }
        if (flags.whiteDephasing) {
            const double p_flip =
                0.5 * (1.0 - std::exp(-dt_us / qc.t2WhiteUs));
            if (qubit_rng[ai].bernoulli(p_flip))
                state.applyPauli(3, dq); // Z
        }
    };

    // Noise catch-up for one operand of a step: coherent noise over
    // the idle gap, Markovian noise over gap + step.
    auto catch_up = [&](int dq, const PlanStep &step) {
        const auto ai = static_cast<size_t>(dq);
        if (last_end[ai] >= 0.0) {
            coherent_idle_noise(ai, last_end[ai], step.start);
            markovian_noise(ai, (step.end - last_end[ai]) * kNsToUs);
        } else {
            markovian_noise(ai, (step.end - step.start) * kNsToUs);
        }
        last_end[ai] = step.end;
    };

    for (const PlanStep &step : plan.steps) {
        switch (step.kind) {
          case PlanStep::Kind::Meas: {
            catch_up(step.q, step);
            bool bit = state.measure(step.q, gate_rng);
            if (flags.measurementErrors) {
                const double p_flip = bit ? step.err10 : step.err01;
                if (gate_rng.bernoulli(p_flip))
                    bit = !bit;
            }
            packer.set(step.clbit, bit);
            break;
          }
          case PlanStep::Kind::TwoQubit: {
            catch_up(step.q, step);
            catch_up(step.q2, step);
            Gate mapped(step.twoQubitType, {step.q, step.q2});
            state.applyGate(mapped);
            if (flags.gateErrors && gate_rng.bernoulli(step.cxError)) {
                applyRandomPauli2Q(state, step.q, step.q2, gate_rng);
            }
            break;
          }
          case PlanStep::Kind::Fused1Q: {
            catch_up(step.q, step);
            if (state.fusesMatrices()) {
                // Compose pulses; only materialize the product onto
                // the state when an error fires (or at the end).
                Matrix2 product = Matrix2::identity();
                for (const Pulse &pulse : step.pulses) {
                    product = pulse.matrix * product;
                    if (flags.gateErrors && pulse.errorProb > 0.0 &&
                        gate_rng.bernoulli(pulse.errorProb)) {
                        state.apply1Q(product, step.q);
                        applyRandomPauli1Q(state, step.q, gate_rng);
                        product = Matrix2::identity();
                    }
                }
                state.apply1Q(product, step.q);
            } else {
                // Tableau replay: gates are cheap, so apply them one
                // by one; the error draws follow the same sequence as
                // the fused path.
                for (const Pulse &pulse : step.pulses) {
                    state.applyGate(pulse.gate);
                    if (flags.gateErrors && pulse.errorProb > 0.0 &&
                        gate_rng.bernoulli(pulse.errorProb)) {
                        applyRandomPauli1Q(state, step.q, gate_rng);
                    }
                }
            }
            break;
          }
        }
    }
    return packer.key();
}

/**
 * Resolve the backend for an executable: Auto takes the stabilizer
 * fast path exactly when it simulates the job faithfully — every
 * gate Clifford and every enabled noise channel Pauli-expressible.
 * Forcing the stabilizer on an ineligible job is a usage error.
 */
BackendKind
resolveBackend(BackendKind requested, const ExecutionPlan &plan,
               const NoiseFlags &flags)
{
    const bool eligible = plan.clifford && flags.pauliExpressible();
    switch (requested) {
      case BackendKind::Auto:
        return eligible ? BackendKind::Stabilizer : BackendKind::Dense;
      case BackendKind::Stabilizer:
        require(plan.clifford,
                "stabilizer backend requires an all-Clifford "
                "executable");
        require(flags.pauliExpressible(),
                "stabilizer backend requires Pauli-expressible noise "
                "(disable OU dephasing / crosstalk, or opt into "
                "NoiseFlags::twirlCoherent)");
        return requested;
      case BackendKind::Dense:
        return requested;
    }
    panic("unreachable backend kind");
}

} // namespace

BackendKind
NoisyMachine::chooseBackend(const ScheduledCircuit &sched) const
{
    const ExecutionPlan plan = buildPlan(sched, cal_, flags_);
    return resolveBackend(BackendKind::Auto, plan, flags_);
}

Distribution
NoisyMachine::run(const ScheduledCircuit &sched, int shots,
                  uint64_t run_seed, int threads,
                  BackendKind backend) const
{
    require(shots > 0, "NoisyMachine::run requires at least one shot");

    const ExecutionPlan plan = buildPlan(sched, cal_, flags_);
    const BackendKind kind = resolveBackend(backend, plan, flags_);
    const Rng base(run_seed ^ 0xadab7dd);

    // Shots are embarrassingly parallel: every shot's RNG streams are
    // forked from (base, shot index) alone, so any partition of the
    // shot range yields the same per-shot outcomes.  Each chunk
    // counts outcomes into its own flat histogram; merging the
    // histograms in chunk order (integer counts — exact addition)
    // reproduces the serial result bit for bit at any thread count.
    const int chunks =
        std::min(resolveThreads(threads), shots);
    std::vector<FlatAccumulator> histograms(
        static_cast<size_t>(chunks));
    parallelFor(0, shots, chunks,
                [&](int64_t lo, int64_t hi, int chunk) {
        FlatAccumulator &hist =
            histograms[static_cast<size_t>(chunk)];
        const std::unique_ptr<SimBackend> state =
            makeBackend(kind, static_cast<int>(plan.active.size()));
        OutcomePacker packer(plan.maxClbit + 1);
        for (int64_t shot = lo; shot < hi; shot++) {
            const Rng shot_rng =
                base.fork(static_cast<uint64_t>(shot) + 1);
            hist.add(runShot(plan, cal_, flags_, *state, packer,
                             shot_rng),
                     1.0);
        }
    });

    Distribution dist;
    for (const FlatAccumulator &hist : histograms) {
        for (const auto &[outcome, count] : hist.sortedItems()) {
            dist.addSamples(outcome,
                            static_cast<uint64_t>(std::llround(count)));
        }
    }
    return dist;
}

std::vector<Distribution>
NoisyMachine::runBatch(std::span<const ScheduledCircuit> jobs, int shots,
                       std::span<const uint64_t> seeds, int threads,
                       BackendKind backend) const
{
    require(jobs.size() == seeds.size(),
            "runBatch requires one seed per job");
    std::vector<Distribution> outputs(jobs.size());

    // Jobs are independent, so they fan out across the pool; each
    // output lands at its job's index.  run() itself is bit-identical
    // across thread counts (its shot parallelism degrades to serial
    // inside pool workers), so the batch reproduces jobs.size()
    // serial run() calls exactly for any thread count.  A single-job
    // batch dispatches inline, keeping run()'s own shot parallelism.
    parallelFor(0, static_cast<int64_t>(jobs.size()), threads,
                [&](int64_t lo, int64_t hi, int) {
        for (int64_t i = lo; i < hi; i++) {
            outputs[static_cast<size_t>(i)] =
                run(jobs[static_cast<size_t>(i)], shots,
                    seeds[static_cast<size_t>(i)], /*threads=*/0,
                    backend);
        }
    });
    return outputs;
}

} // namespace adapt
