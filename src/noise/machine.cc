#include "noise/machine.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/env.hh"
#include "common/flat_accumulator.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "noise/compiled.hh"
#include "noise/program_cache.hh"
#include "sim/backend.hh"
#include "sim/frame_batch.hh"

namespace adapt
{

NoisyMachine::NoisyMachine(const Device &device, int cycle,
                           NoiseFlags flags)
    : device_(device), cal_(device.calibration(cycle)), flags_(flags),
      cache_(ProgramCache::processShared())
{
}

/**
 * A job lowered once: the execution plan (interpreted path), the
 * resolved backend, and the compiled program its shots replay — a
 * dense ShotProgram or a stabilizer FrameProgram.
 */
struct PreparedJob
{
    ExecutionPlan plan;
    BackendKind kind = BackendKind::Dense;
    std::optional<ShotProgram> program; //!< dense jobs only
    std::optional<FrameProgram> frame;  //!< stabilizer jobs only

    /** Lazy branch-tail store, shared by every run of this job;
     *  non-null iff frame && frame->branchTails. */
    std::shared_ptr<FrameTailCache> tails;
};

BackendKind
PreparedCircuit::backend() const
{
    require(impl_ != nullptr,
            "PreparedCircuit::backend on an empty handle");
    return impl_->kind;
}

bool
PreparedCircuit::frameBatched() const
{
    require(impl_ != nullptr,
            "PreparedCircuit::frameBatched on an empty handle");
    return impl_->frame.has_value();
}

namespace
{

/** Apply a uniformly random single-qubit Pauli. */
void
applyRandomPauli1Q(SimBackend &state, QubitId q, Rng &rng)
{
    state.applyPauli(static_cast<int>(rng.uniformInt(3)) + 1, q);
}

/** Apply a random non-identity two-qubit Pauli pair. */
void
applyRandomPauli2Q(SimBackend &state, QubitId a, QubitId b, Rng &rng)
{
    const auto code = static_cast<int>(rng.uniformInt(15)) + 1;
    state.applyPauli(code & 3, a);
    state.applyPauli(code >> 2, b);
}

/**
 * One Monte-Carlo trajectory on @p state — the interpreted reference
 * path.  All randomness comes from streams forked off @p shot_rng, so
 * a shot's outcome depends only on its index — never on which thread
 * runs it or in which order.  The compiled replay (noise/compiled.hh)
 * consumes the identical draw sequence and mutates the state with
 * bit-identical operands; this function remains the executable
 * specification it is tested against, and the only dense path the
 * sanitizers cannot simplify away.
 */
uint64_t
runShot(const ExecutionPlan &plan, const Calibration &cal,
        const NoiseFlags &flags, SimBackend &state,
        OutcomePacker &packer, const Rng &shot_rng)
{
    const std::vector<QubitId> &active = plan.active;
    Rng gate_rng = shot_rng.fork(0x6a7e);

    // Per-qubit OU detuning processes with private streams.
    std::vector<std::optional<OuProcess>> ou(active.size());
    std::vector<Rng> qubit_rng;
    qubit_rng.reserve(active.size());
    for (size_t ai = 0; ai < active.size(); ai++) {
        qubit_rng.push_back(shot_rng.fork(0x0b5e + ai));
        const auto &qc = cal.qubits[static_cast<size_t>(active[ai])];
        if (flags.ouDephasing) {
            ou[ai].emplace(qc.ouSigmaRadPerUs, qc.ouTauUs,
                           qubit_rng[ai]);
        }
    }

    state.init();
    packer.clear();
    std::vector<TimeNs> last_end(active.size(), -1.0);

    // Coherent (refocusable) idle noise for qubit ai over [t0, t1):
    // slow OU detuning plus crosstalk from concurrent CNOTs.  Only
    // *idle* gaps accrue coherent Z phase — during a pulse the drive
    // dominates the dynamics.
    auto coherent_idle_noise = [&](size_t ai, TimeNs t0, TimeNs t1) {
        if (t1 - t0 <= 1e-9)
            return;
        const double dt_us = (t1 - t0) * kNsToUs;

        double phase = 0.0;
        if (flags.ouDephasing) {
            const double mid_us = (t0 + t1) / 2.0 * kNsToUs;
            phase += ou[ai]->at(mid_us, qubit_rng[ai]) * dt_us;
        }
        if (flags.crosstalk) {
            for (const CrosstalkSource &src : plan.xtalk[ai]) {
                phase += src.radPerUs *
                         overlapUs(t0, t1, src.start, src.end);
            }
        }
        if (phase != 0.0) {
            if (flags.twirlCoherent) {
                // Pauli twirl of the accrued phase, applied by the
                // engine so both backends sample the identical
                // (approximate) law under this flag.
                if (qubit_rng[ai].bernoulli(twirlZProbability(phase)))
                    state.applyPauli(3, static_cast<int>(ai)); // Z
            } else {
                state.applyIdlePhase(static_cast<int>(ai), phase,
                                     qubit_rng[ai]);
            }
        }
    };

    // Markovian noise (T1 relaxation, white dephasing) acts on
    // wall-clock time — *including* gate and DD pulse durations, so a
    // dense pulse train cannot shelter a qubit from it.
    auto markovian_noise = [&](size_t ai, double dt_us) {
        if (dt_us <= 0.0)
            return;
        const int dq = static_cast<int>(ai);
        const auto &qc =
            cal.qubits[static_cast<size_t>(active[ai])];

        if (flags.t1Damping) {
            // Thinned jump sampling: fire the relaxation jump with
            // probability gamma * P(|1>); the O(gamma^2) no-jump
            // reweighting is negligible at these rates.
            const double gamma = t1JumpProbability(dt_us, qc.t1Us);
            if (qubit_rng[ai].bernoulli(gamma) &&
                qubit_rng[ai].bernoulli(state.populationOne(dq))) {
                state.applyDecayJump(dq);
            }
        }
        if (flags.whiteDephasing) {
            const double p_flip = whiteDephasingFlipProbability(
                dt_us, qc.t2WhiteUs);
            if (qubit_rng[ai].bernoulli(p_flip))
                state.applyPauli(3, dq); // Z
        }
    };

    // Noise catch-up for one operand of a step: coherent noise over
    // the idle gap, Markovian noise over gap + step.
    auto catch_up = [&](int dq, const PlanStep &step) {
        const auto ai = static_cast<size_t>(dq);
        if (last_end[ai] >= 0.0) {
            coherent_idle_noise(ai, last_end[ai], step.start);
            markovian_noise(ai, (step.end - last_end[ai]) * kNsToUs);
        } else {
            markovian_noise(ai, (step.end - step.start) * kNsToUs);
        }
        last_end[ai] = step.end;
    };

    for (const PlanStep &step : plan.steps) {
        switch (step.kind) {
          case PlanStep::Kind::Meas: {
            catch_up(step.q, step);
            bool bit = state.measure(step.q, gate_rng);
            if (flags.measurementErrors) {
                const double p_flip = bit ? step.err10 : step.err01;
                if (gate_rng.bernoulli(p_flip))
                    bit = !bit;
            }
            packer.set(step.clbit, bit);
            break;
          }
          case PlanStep::Kind::Reset: {
            // Reset as measure-and-correct: one collapse draw from
            // the gate stream (like Measure, minus readout error),
            // then a deterministic |1> -> |0> flip.
            catch_up(step.q, step);
            if (state.measure(step.q, gate_rng))
                state.applyPauli(1, step.q);
            break;
          }
          case PlanStep::Kind::Cond1Q: {
            // Feedback pulse: fires iff the classical register reads
            // 1 at this point in the shot.  No error channel and no
            // draws — RNG consumption must not depend on data.
            catch_up(step.q, step);
            if (packer.get(step.condBit)) {
                if (state.fusesMatrices())
                    state.apply1Q(step.pulses[0].matrix, step.q);
                else
                    state.applyGate(step.pulses[0].gate);
            }
            break;
          }
          case PlanStep::Kind::TwoQubit: {
            catch_up(step.q, step);
            catch_up(step.q2, step);
            Gate mapped(step.twoQubitType, {step.q, step.q2});
            state.applyGate(mapped);
            if (flags.gateErrors && gate_rng.bernoulli(step.cxError)) {
                applyRandomPauli2Q(state, step.q, step.q2, gate_rng);
            }
            break;
          }
          case PlanStep::Kind::Fused1Q: {
            catch_up(step.q, step);
            if (state.fusesMatrices()) {
                // Compose pulses; only materialize the product onto
                // the state when an error fires (or at the end).
                Matrix2 product = Matrix2::identity();
                for (const Pulse &pulse : step.pulses) {
                    product = pulse.matrix * product;
                    if (flags.gateErrors && pulse.errorProb > 0.0 &&
                        gate_rng.bernoulli(pulse.errorProb)) {
                        state.apply1Q(product, step.q);
                        applyRandomPauli1Q(state, step.q, gate_rng);
                        product = Matrix2::identity();
                    }
                }
                state.apply1Q(product, step.q);
            } else {
                // Tableau replay: gates are cheap, so apply them one
                // by one; the error draws follow the same sequence as
                // the fused path.
                for (const Pulse &pulse : step.pulses) {
                    state.applyGate(pulse.gate);
                    if (flags.gateErrors && pulse.errorProb > 0.0 &&
                        gate_rng.bernoulli(pulse.errorProb)) {
                        applyRandomPauli1Q(state, step.q, gate_rng);
                    }
                }
            }
            break;
          }
        }
    }
    return packer.key();
}

/**
 * Resolve the backend for an executable: Auto takes the stabilizer
 * fast path exactly when it simulates the job faithfully — every
 * gate Clifford and every enabled noise channel Pauli-expressible.
 * Forcing the stabilizer on an ineligible job is a usage error.
 */
BackendKind
resolveBackend(BackendKind requested, const ExecutionPlan &plan,
               const NoiseFlags &flags)
{
    const bool eligible = plan.clifford && flags.pauliExpressible();
    switch (requested) {
      case BackendKind::Auto:
        return eligible ? BackendKind::Stabilizer : BackendKind::Dense;
      case BackendKind::Stabilizer:
        require(plan.clifford,
                "stabilizer backend requires an all-Clifford "
                "executable");
        require(flags.pauliExpressible(),
                "stabilizer backend requires Pauli-expressible noise "
                "(disable OU dephasing / crosstalk, or opt into "
                "NoiseFlags::twirlCoherent)");
        return requested;
      case BackendKind::Dense:
        return requested;
    }
    panic("unreachable backend kind");
}

/**
 * Process-wide kill switch for the batched Pauli-frame engine:
 * ADAPT_FRAME_BATCH=0 (or "off") pins stabilizer jobs to the
 * per-shot tableau even under ExecMode::Compiled.  Read once, like
 * ADAPT_NUM_THREADS.
 */
bool
frameBatchEnabled()
{
    static const bool enabled =
        envFlag("ADAPT_FRAME_BATCH", /*fallback=*/true);
    return enabled;
}

/**
 * True when a stabilizer job can be lowered onto the batch frame
 * engine: everything the resolved-stabilizer precondition already
 * guarantees, minus per-shot OU twirl draws (whose phase — and hence
 * Z probability — differs per shot) and minus conditional non-Pauli
 * pulses (whose frame action is data-dependent).  Ineligible jobs
 * keep the per-shot tableau backend.
 */
bool
frameEligible(const ExecutionPlan &plan, const NoiseFlags &flags)
{
    return !flags.ouDephasing && !plan.condNonPauli &&
           frameBatchEnabled();
}

/**
 * The structure phase of prepare(): everything device-independent —
 * plan lowering, backend resolution, dense splice tables or the frame
 * engine's reference-tableau walk.  A skeleton is a pure function of
 * (schedule, flags, requested backend, frame-engine env knobs), which
 * is exactly what skeletonFingerprint folds, so instances are safely
 * shared across machines, calibration cycles, and threads.
 */
ProgramSkeleton
buildProgramSkeleton(const ScheduledCircuit &sched,
                     const NoiseFlags &flags, BackendKind backend,
                     bool compile)
{
    ProgramSkeleton skel = buildPlanSkeleton(sched, flags);
    skel.kind = resolveBackend(backend, skel.plan, flags);
    if (compile) {
        if (skel.kind == BackendKind::Dense) {
            skel.tables = buildShotTables(skel.plan);
            skel.compiled = true;
        } else if (frameEligible(skel.plan, flags)) {
            skel.frame = buildFrameSkeleton(skel.plan, flags);
            skel.compiled = true;
        }
    }
    return skel;
}

/**
 * Merge per-chunk histograms into the output distribution: gather
 * every chunk's raw items, sort the combined list once, and fold
 * duplicate keys before they reach the Distribution map — instead of
 * sorting each chunk's items separately and re-looking-up shared
 * keys.  Integer counts add exactly, so the result is identical for
 * any chunk count.
 */
Distribution
mergeChunkHistograms(const std::vector<FlatAccumulator> &histograms)
{
    size_t total = 0;
    for (const FlatAccumulator &hist : histograms)
        total += hist.size();
    std::vector<std::pair<uint64_t, double>> items;
    items.reserve(total);
    for (const FlatAccumulator &hist : histograms)
        hist.appendItemsTo(items);
    std::sort(items.begin(), items.end());

    Distribution dist;
    for (size_t i = 0; i < items.size();) {
        const uint64_t key = items[i].first;
        double count = 0.0;
        for (; i < items.size() && items[i].first == key; i++)
            count += items[i].second;
        dist.addSamples(key,
                        static_cast<uint64_t>(std::llround(count)));
    }
    return dist;
}

} // namespace

BackendKind
NoisyMachine::chooseBackend(const ScheduledCircuit &sched) const
{
    const ExecutionPlan plan = buildPlan(sched, cal_, flags_);
    return resolveBackend(BackendKind::Auto, plan, flags_);
}

PreparedCircuit
NoisyMachine::prepareImpl(const ScheduledCircuit &sched,
                          BackendKind backend, bool compile) const
{
    // Structure phase: cached when a cache is installed and the job
    // is compiled (interpreted prepares skip compilation and are too
    // cheap to be worth a cache slot).  Cold and cached prepares run
    // the identical build + bind code — only the skeleton's object
    // identity differs — so the executed programs are bit-identical.
    std::shared_ptr<const ProgramSkeleton> skel;
    if (cache_ != nullptr && compile) {
        const ProgramFingerprint fp =
            skeletonFingerprint(sched, flags_, backend);
        skel = cache_->findOrBuild(fp, [&] {
            return buildProgramSkeleton(sched, flags_, backend,
                                        compile);
        });
    } else {
        skel = std::make_shared<const ProgramSkeleton>(
            buildProgramSkeleton(sched, flags_, backend, compile));
    }

    // Bind phase: stamp this machine's calibration constants.
    auto job = std::make_shared<PreparedJob>();
    job->plan = bindPlan(*skel, cal_, flags_);
    job->kind = skel->kind;
    if (skel->tables) {
        job->program =
            bindShotProgram(job->plan, *skel->tables, cal_, flags_);
    } else if (skel->frame) {
        job->frame =
            bindFrameProgram(job->plan, *skel->frame, cal_, flags_);
        if (job->frame->branchTails)
            job->tails = std::make_shared<FrameTailCache>();
    }
    PreparedCircuit prepared;
    prepared.impl_ = std::move(job);
    return prepared;
}

PreparedCircuit
NoisyMachine::prepare(const ScheduledCircuit &sched,
                      BackendKind backend) const
{
    return prepareImpl(sched, backend, /*compile=*/true);
}

Distribution
NoisyMachine::run(const PreparedCircuit &prepared, int shots,
                  uint64_t run_seed, int threads, ExecMode mode) const
{
    return runPartial(prepared, shots, run_seed, threads, RunControl{},
                      mode)
        .dist;
}

RunOutcome
NoisyMachine::runPartial(const PreparedCircuit &prepared, int shots,
                         uint64_t run_seed, int threads,
                         const RunControl &control, ExecMode mode) const
{
    require(shots > 0, "NoisyMachine::run requires at least one shot");
    require(prepared.valid(),
            "NoisyMachine::run on an empty PreparedCircuit");
    const PreparedJob &job = *prepared.impl_;
    const bool compiled =
        mode == ExecMode::Compiled && job.program.has_value();
    const Rng base(run_seed ^ 0xadab7dd);

    // With a quiet control (no armed token, no progress callback) a
    // single wave covers the whole job and the code below is exactly
    // the historical run() — same chunking, same RNG streams, same
    // key-ordered merge, bit-identical output.  An armed control
    // switches to wave-structured execution: one block per chunk per
    // wave, token polled between waves, so the committed work is
    // always a contiguous, deterministic prefix of the shot range.
    const bool limited =
        control.token.armed() || control.progress != nullptr;

    RunOutcome out;

    if (mode == ExecMode::Compiled && job.frame.has_value()) {
        // Batched Pauli-frame engine: shots propagate laneCount() at
        // a time through the compiled frame op stream (the width is a
        // bind-time property of the program — ADAPT_FRAME_LANES).
        // Blocks are a pure function of the shot count, each block's
        // randomness is forked from (base, absolute lane group), and
        // the per-chunk histograms merge in key order — so the output
        // is bit-identical for any thread count, batch-vs-serial, and
        // any point a stop request lands.
        const FrameProgram &prog = *job.frame;
        const auto lane_count = static_cast<int64_t>(prog.laneCount());
        const auto blocks = static_cast<int64_t>(
            (static_cast<int64_t>(shots) + lane_count - 1) /
            lane_count);
        const int chunks = static_cast<int>(std::min<int64_t>(
            resolveThreads(threads), blocks));
        std::vector<FlatAccumulator> histograms(
            static_cast<size_t>(chunks));

        // Per-chunk-slot workers persist across waves (the pool may
        // hand a slot to a different thread each wave; parallelFor's
        // batch completion orders those accesses).
        struct ChunkWorker
        {
            std::unique_ptr<FrameBatchBackend> runner;
            std::unique_ptr<StabilizerState> scratch;
            std::unique_ptr<OutcomePacker> packer;
            std::vector<DeferredShot> deferred;
            std::vector<FrameTailShot> tails;
            FrameBatchStats stats;
        };
        std::vector<ChunkWorker> workers(static_cast<size_t>(chunks));

        int64_t done = 0;
        while (done < blocks) {
            if ((out.cause = control.token.cause()) != StopCause::None)
                break;
            const int64_t hi =
                limited ? std::min<int64_t>(done + chunks, blocks)
                        : blocks;
            parallelFor(done, hi, chunks,
                        [&](int64_t lo2, int64_t hi2, int chunk) {
                ChunkWorker &w = workers[static_cast<size_t>(chunk)];
                FlatAccumulator &hist =
                    histograms[static_cast<size_t>(chunk)];
                if (!w.runner) {
                    w.runner = std::make_unique<FrameBatchBackend>(prog);
                }
                for (int64_t block = lo2; block < hi2; block++) {
                    const auto lanes =
                        static_cast<int>(std::min<int64_t>(
                            lane_count,
                            static_cast<int64_t>(shots) -
                                block * lane_count));
                    w.runner->runBlock(base, block, lanes, hist,
                                       w.deferred, w.tails);
                }
                if (w.deferred.empty() && w.tails.empty())
                    return;
                // Lanes whose T1 jump fired on a reference-superposed
                // qubit finish off the plane pass: via compiled
                // branch tails when enabled, else via exact per-shot
                // tableau reruns of the same op stream.  Either way
                // each consumes a dedicated stream keyed by its
                // absolute shot index, so the merged output stays
                // chunking- and wave-invariant.
                if (!w.scratch) {
                    w.scratch = std::make_unique<StabilizerState>(
                        prog.numQubits);
                    w.packer = std::make_unique<OutcomePacker>(
                        prog.numClbits);
                }
                if (!w.deferred.empty()) {
                    w.stats.deferredShots +=
                        static_cast<int64_t>(w.deferred.size());
                    drainDeferredShots(prog, base, w.deferred,
                                       *w.scratch, *w.packer, hist);
                }
                if (!w.tails.empty()) {
                    drainTailShots(prog, base, w.tails, *job.tails,
                                   *w.scratch, *w.packer, hist,
                                   w.stats);
                }
            });
            done = hi;
            if (control.progress) {
                control.progress(std::min<int64_t>(
                    done * lane_count, static_cast<int64_t>(shots)));
            }
        }
        out.shotsDone = std::min<int64_t>(done * lane_count,
                                          static_cast<int64_t>(shots));
        out.partial = done < blocks;
        out.dist = mergeChunkHistograms(histograms);
        for (const ChunkWorker &w : workers)
            out.frameStats.merge(w.stats);
        return out;
    }

    // Dense / per-shot paths.  Shots are embarrassingly parallel:
    // every shot's RNG streams are forked from (base, shot index)
    // alone, so any partition of the shot range yields the same
    // per-shot outcomes.  Each chunk counts outcomes into its own
    // flat histogram; merging the histograms in key order (integer
    // counts — exact addition) reproduces the serial result bit for
    // bit at any thread count.
    const int chunks = std::min(resolveThreads(threads), shots);
    std::vector<FlatAccumulator> histograms(
        static_cast<size_t>(chunks));

    // Small compiled jobs take the grouped SoA replay: tapes for a
    // whole kShotBlock block are drawn up front, equal error
    // signatures share one multi-shot gate-stream execution, and
    // divergent shots peel back to the scalar replayer — identical
    // outcomes, so the knob is a pure execution-strategy choice.
    // Read live (not once) so tests can flip it per run.
    const bool grouped = compiled &&
                         BatchShotReplayer::eligible(*job.program) &&
                         envFlag("ADAPT_DENSE_SHOT_BATCH",
                                 /*fallback=*/true);

    struct ChunkWorker
    {
        std::unique_ptr<ShotReplayer> replayer;
        std::unique_ptr<BatchShotReplayer> batch;
        std::unique_ptr<SimBackend> state;
        std::unique_ptr<OutcomePacker> packer;
    };
    std::vector<ChunkWorker> workers(static_cast<size_t>(chunks));

    // Single-chunk cancellable runs poll the token per shot instead
    // of per wave: with one chunk the committed shots are a prefix at
    // *any* shot boundary, so the finest granularity is free.
    const CancellationToken *shot_token =
        limited && chunks == 1 && control.token.armed()
            ? &control.token
            : nullptr;
    const int64_t wave = limited
                             ? static_cast<int64_t>(chunks) * kShotBlock
                             : static_cast<int64_t>(shots);
    int64_t done = 0;
    bool stopped_in_block = false;
    while (done < shots && !stopped_in_block) {
        if ((out.cause = control.token.cause()) != StopCause::None)
            break;
        const int64_t hi =
            std::min<int64_t>(done + wave, static_cast<int64_t>(shots));
        int64_t wave_done = hi - done;
        parallelFor(done, hi, chunks,
                    [&](int64_t lo2, int64_t hi2, int chunk) {
            ChunkWorker &w = workers[static_cast<size_t>(chunk)];
            FlatAccumulator &hist =
                histograms[static_cast<size_t>(chunk)];
            if (grouped) {
                if (!w.batch) {
                    w.batch = std::make_unique<BatchShotReplayer>(
                        job.plan, *job.program);
                }
                const int64_t ran = w.batch->runBlock(
                    base, lo2, hi2 - lo2, hist, shot_token);
                if (shot_token != nullptr)
                    wave_done = ran; // chunks == 1: sole writer
                return;
            }
            if (compiled) {
                if (!w.replayer) {
                    w.replayer = std::make_unique<ShotReplayer>(
                        job.plan, *job.program);
                }
                const int64_t ran = w.replayer->runBlock(
                    base, lo2, hi2 - lo2, hist, shot_token);
                if (shot_token != nullptr)
                    wave_done = ran; // chunks == 1: sole writer
                return;
            }
            if (!w.state) {
                w.state = makeBackend(
                    job.kind,
                    static_cast<int>(job.plan.active.size()));
                w.packer = std::make_unique<OutcomePacker>(
                    job.plan.maxClbit + 1);
            }
            for (int64_t shot = lo2; shot < hi2; shot++) {
                if (shot_token != nullptr &&
                    shot_token->stopRequested()) {
                    wave_done = shot - lo2; // chunks == 1
                    return;
                }
                const Rng shot_rng =
                    base.fork(static_cast<uint64_t>(shot) + 1);
                hist.add(runShot(job.plan, cal_, flags_, *w.state,
                                 *w.packer, shot_rng),
                         1.0);
            }
        });
        done += wave_done;
        // A per-shot poll (chunks == 1) may stop inside the wave; the
        // cause is re-read from the token after the loop.
        stopped_in_block = done < hi;
        if (control.progress)
            control.progress(done);
    }
    out.shotsDone = done;
    out.partial = done < shots;
    if (out.partial && out.cause == StopCause::None)
        out.cause = control.token.cause();
    out.dist = mergeChunkHistograms(histograms);
    for (const ChunkWorker &w : workers) {
        if (w.batch)
            out.denseStats.merge(w.batch->stats());
    }
    return out;
}

namespace
{

/** Fold one FlatAccumulator into key-sorted, key-unique integer
 *  items — the wire form of a shard range's histogram. */
std::vector<std::pair<uint64_t, uint64_t>>
foldShardItems(const FlatAccumulator &hist)
{
    std::vector<std::pair<uint64_t, double>> raw;
    raw.reserve(hist.size());
    hist.appendItemsTo(raw);
    std::sort(raw.begin(), raw.end());
    std::vector<std::pair<uint64_t, uint64_t>> items;
    items.reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
        const uint64_t key = raw[i].first;
        double count = 0.0;
        for (; i < raw.size() && raw[i].first == key; i++)
            count += raw[i].second;
        items.emplace_back(
            key, static_cast<uint64_t>(std::llround(count)));
    }
    return items;
}

} // namespace

int64_t
NoisyMachine::shardBlockShots(const PreparedCircuit &prepared,
                              ExecMode mode) const
{
    require(prepared.valid(),
            "shardBlockShots on an empty PreparedCircuit");
    const PreparedJob &job = *prepared.impl_;
    return mode == ExecMode::Compiled && job.frame.has_value()
               ? static_cast<int64_t>(job.frame->laneCount())
               : static_cast<int64_t>(kShotBlock);
}

int64_t
NoisyMachine::shardBlockCount(const PreparedCircuit &prepared,
                              int shots, ExecMode mode) const
{
    require(shots > 0, "shardBlockCount requires at least one shot");
    const int64_t block = shardBlockShots(prepared, mode);
    return (static_cast<int64_t>(shots) + block - 1) / block;
}

std::vector<std::pair<uint64_t, uint64_t>>
NoisyMachine::runShardRange(
    const PreparedCircuit &prepared, int shots, int64_t block_lo,
    int64_t block_hi, uint64_t run_seed, ExecMode mode,
    const std::function<void(int64_t)> &progress) const
{
    require(shots > 0, "runShardRange requires at least one shot");
    require(prepared.valid(),
            "runShardRange on an empty PreparedCircuit");
    const int64_t blocks = shardBlockCount(prepared, shots, mode);
    require(block_lo >= 0 && block_lo <= block_hi && block_hi <= blocks,
            "runShardRange block range out of bounds");
    const PreparedJob &job = *prepared.impl_;
    const Rng base(run_seed ^ 0xadab7dd);
    FlatAccumulator hist;
    int64_t range_shots = 0;

    if (mode == ExecMode::Compiled && job.frame.has_value()) {
        // Batch frame path: identical per-block randomness to
        // runPartial — runBlock forks off (base, absolute block), the
        // drains consume streams keyed by absolute shot index and are
        // wave/chunking-invariant, so draining after every block
        // matches any other drain cadence bit for bit.
        const FrameProgram &prog = *job.frame;
        const auto lane_count = static_cast<int64_t>(prog.laneCount());
        FrameBatchBackend runner(prog);
        StabilizerState scratch(prog.numQubits);
        OutcomePacker packer(prog.numClbits);
        std::vector<DeferredShot> deferred;
        std::vector<FrameTailShot> tails;
        FrameBatchStats stats;
        for (int64_t block = block_lo; block < block_hi; block++) {
            const auto lanes = static_cast<int>(std::min<int64_t>(
                lane_count,
                static_cast<int64_t>(shots) - block * lane_count));
            runner.runBlock(base, block, lanes, hist, deferred, tails);
            if (!deferred.empty()) {
                drainDeferredShots(prog, base, deferred, scratch,
                                   packer, hist);
            }
            if (!tails.empty()) {
                drainTailShots(prog, base, tails, *job.tails, scratch,
                               packer, hist, stats);
            }
            range_shots += lanes;
            if (progress)
                progress(range_shots);
        }
        return foldShardItems(hist);
    }

    // Dense / per-shot paths: per-shot streams forked from
    // (base, absolute shot index), exactly as in runPartial —
    // including the grouped-replay strategy choice, which never
    // changes outcomes.
    const bool compiled =
        mode == ExecMode::Compiled && job.program.has_value();
    const bool grouped = compiled &&
                         BatchShotReplayer::eligible(*job.program) &&
                         envFlag("ADAPT_DENSE_SHOT_BATCH",
                                 /*fallback=*/true);
    std::unique_ptr<ShotReplayer> replayer;
    std::unique_ptr<BatchShotReplayer> batch;
    std::unique_ptr<SimBackend> state;
    std::unique_ptr<OutcomePacker> packer;
    for (int64_t block = block_lo; block < block_hi; block++) {
        const int64_t lo = block * kShotBlock;
        const int64_t hi = std::min<int64_t>(
            lo + kShotBlock, static_cast<int64_t>(shots));
        if (grouped) {
            if (!batch) {
                batch = std::make_unique<BatchShotReplayer>(
                    job.plan, *job.program);
            }
            batch->runBlock(base, lo, hi - lo, hist, nullptr);
        } else if (compiled) {
            if (!replayer) {
                replayer = std::make_unique<ShotReplayer>(
                    job.plan, *job.program);
            }
            replayer->runBlock(base, lo, hi - lo, hist, nullptr);
        } else {
            if (!state) {
                state = makeBackend(
                    job.kind,
                    static_cast<int>(job.plan.active.size()));
                packer = std::make_unique<OutcomePacker>(
                    job.plan.maxClbit + 1);
            }
            for (int64_t shot = lo; shot < hi; shot++) {
                const Rng shot_rng =
                    base.fork(static_cast<uint64_t>(shot) + 1);
                hist.add(runShot(job.plan, cal_, flags_, *state,
                                 *packer, shot_rng),
                         1.0);
            }
        }
        range_shots += hi - lo;
        if (progress)
            progress(range_shots);
    }
    return foldShardItems(hist);
}

Distribution
mergeShardItems(std::vector<std::pair<uint64_t, uint64_t>> items)
{
    std::sort(items.begin(), items.end());
    Distribution dist;
    for (size_t i = 0; i < items.size();) {
        const uint64_t key = items[i].first;
        uint64_t count = 0;
        for (; i < items.size() && items[i].first == key; i++)
            count += items[i].second;
        dist.addSamples(key, count);
    }
    return dist;
}

Distribution
NoisyMachine::run(const ScheduledCircuit &sched, int shots,
                  uint64_t run_seed, int threads,
                  BackendKind backend, ExecMode mode) const
{
    return run(prepareImpl(sched, backend,
                           /*compile=*/mode == ExecMode::Compiled),
               shots, run_seed, threads, mode);
}

std::vector<Distribution>
NoisyMachine::runBatch(std::span<const ScheduledCircuit> jobs, int shots,
                       std::span<const uint64_t> seeds, int threads,
                       BackendKind backend, ExecMode mode) const
{
    require(jobs.size() == seeds.size(),
            "runBatch requires one seed per job");
    require(jobs.empty() || shots > 0,
            "runBatch requires at least one shot");
    std::vector<Distribution> outputs(jobs.size());

    // Jobs are independent, so they fan out across the pool; each
    // output lands at its job's index.  Preparation (plan lowering +
    // shot-program compilation) happens inside the workers, so a
    // batch also parallelizes the per-variant compile.  run() itself
    // is bit-identical across thread counts (its shot parallelism
    // degrades to serial inside pool workers), so the batch
    // reproduces jobs.size() serial run() calls exactly for any
    // thread count.  A single-job batch dispatches inline, keeping
    // run()'s own shot parallelism.
    parallelFor(0, static_cast<int64_t>(jobs.size()), threads,
                [&](int64_t lo, int64_t hi, int) {
        for (int64_t i = lo; i < hi; i++) {
            outputs[static_cast<size_t>(i)] =
                run(jobs[static_cast<size_t>(i)], shots,
                    seeds[static_cast<size_t>(i)], /*threads=*/0,
                    backend, mode);
        }
    });
    return outputs;
}

std::vector<Distribution>
NoisyMachine::runBatch(std::span<const PreparedCircuit> jobs, int shots,
                       std::span<const uint64_t> seeds, int threads,
                       ExecMode mode) const
{
    require(jobs.size() == seeds.size(),
            "runBatch requires one seed per job");
    require(jobs.empty() || shots > 0,
            "runBatch requires at least one shot");
    std::vector<Distribution> outputs(jobs.size());
    parallelFor(0, static_cast<int64_t>(jobs.size()), threads,
                [&](int64_t lo, int64_t hi, int) {
        for (int64_t i = lo; i < hi; i++) {
            outputs[static_cast<size_t>(i)] =
                run(jobs[static_cast<size_t>(i)], shots,
                    seeds[static_cast<size_t>(i)], /*threads=*/0,
                    mode);
        }
    });
    return outputs;
}

std::vector<RunOutcome>
NoisyMachine::runBatchPartial(std::span<const PreparedCircuit> jobs,
                              int shots,
                              std::span<const uint64_t> seeds,
                              int threads, const RunControl &control,
                              ExecMode mode) const
{
    require(jobs.size() == seeds.size(),
            "runBatch requires one seed per job");
    require(jobs.empty() || shots > 0,
            "runBatch requires at least one shot");
    std::vector<RunOutcome> outputs(jobs.size());

    // Same fan-out as runBatch, with the stop token threaded through:
    // each job polls it once before starting (a stopped token skips
    // the job — shotsDone 0, partial, cause recorded) and then runs
    // cancellably under it.  Jobs draw only from their own seeds, so
    // every job that completed is bit-identical to a solo run() no
    // matter when a sibling was skipped or truncated.
    RunControl job_control;
    job_control.token = control.token;
    parallelFor(0, static_cast<int64_t>(jobs.size()), threads,
                [&](int64_t lo, int64_t hi, int) {
        for (int64_t i = lo; i < hi; i++) {
            RunOutcome &out = outputs[static_cast<size_t>(i)];
            const StopCause cause = control.token.cause();
            if (cause != StopCause::None) {
                out.partial = true;
                out.cause = cause;
                continue;
            }
            out = runPartial(jobs[static_cast<size_t>(i)], shots,
                             seeds[static_cast<size_t>(i)],
                             /*threads=*/0, job_control, mode);
        }
    });
    return outputs;
}

} // namespace adapt
